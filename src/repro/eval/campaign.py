"""Campaign plumbing: run one tool on one subject under a budget.

The paper runs every tool for 48 hours per subject, three repetitions, and
reports the best run.  Here budgets are execution counts (see DESIGN.md §2)
and repetitions vary the seed; :func:`best_of` picks the best repetition by
a caller-supplied metric, mirroring the paper's "we report the best run".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.afl import AFLConfig, AFLFuzzer
from repro.baselines.klee import KleeConfig, KleeExplorer
from repro.baselines.rand import RandomConfig, RandomFuzzer
from repro.baselines.driller import DrillerConfig, DrillerFuzzer
from repro.baselines.steelix import SteelixConfig, SteelixFuzzer
from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.subjects.base import Subject
from repro.subjects.registry import (
    available_subjects,
    is_known_subject,
    load_subject,
    load_subject_module,
)


def _run_pfuzzer(subject: Subject, seed: int, budget: int, durability: dict):
    config = FuzzerConfig(seed=seed, max_executions=budget, **durability)
    return PFuzzer(subject, config).run()


def _run_afl(subject: Subject, seed: int, budget: int, durability: dict):
    return AFLFuzzer(subject, AFLConfig(seed=seed, max_executions=budget)).run()


def _run_klee(subject: Subject, seed: int, budget: int, durability: dict):
    return KleeExplorer(subject, KleeConfig(seed=seed, max_executions=budget)).run()


def _run_random(subject: Subject, seed: int, budget: int, durability: dict):
    return RandomFuzzer(subject, RandomConfig(seed=seed, max_executions=budget)).run()


def _run_steelix(subject: Subject, seed: int, budget: int, durability: dict):
    return SteelixFuzzer(subject, SteelixConfig(seed=seed, max_executions=budget)).run()


def _run_driller(subject: Subject, seed: int, budget: int, durability: dict):
    return DrillerFuzzer(subject, DrillerConfig(seed=seed, max_executions=budget)).run()


#: tool name -> runner.  Every runner returns an object with
#: ``valid_inputs`` / ``executions`` / ``wall_time`` attributes.
_RUNNERS = {
    "pfuzzer": _run_pfuzzer,
    "afl": _run_afl,
    "klee": _run_klee,
    "random": _run_random,
    "steelix": _run_steelix,
    "driller": _run_driller,
}

#: Tool names accepted by :func:`run_campaign`.  "steelix" (AFL +
#: comparison progress) and "driller" (AFL + symbolic stints) are the §6.2
#: related-work baselines, not part of the paper's evaluation grid.
TOOLS: Tuple[str, ...] = ("pfuzzer", "afl", "klee", "random", "steelix", "driller")


@dataclass
class ToolOutput:
    """Normalised campaign output, whichever tool produced it."""

    tool: str
    subject: str
    seed: int
    valid_inputs: List[str] = field(default_factory=list)
    executions: int = 0
    wall_time: float = 0.0
    #: Final pFuzzer queue depth; ``None`` for tools without a queue.
    queue_depth: Optional[int] = None
    #: Seconds per campaign phase (pFuzzer reports "execute" / "rescore" /
    #: "substitute" / "checkpoint"); ``None`` for tools without a breakdown.
    phase_times: Optional[Dict[str, float]] = None
    #: Times the campaign was restored from a checkpoint (0 = never; only
    #: pFuzzer campaigns are checkpointable).
    resumes: int = 0
    #: Stable path signature per valid input (pFuzzer only; parallel with
    #: ``valid_inputs``), persisted by :mod:`repro.eval.corpus_store`.
    valid_signatures: Optional[List[int]] = None
    #: Subject executions that crashed (raised something other than the
    #: subject's declared rejection exceptions).  Always counted; the
    #: fields below are populated only in crash-hunting mode.
    crashes: int = 0
    #: Deduplicated crashing inputs (one per distinct failure site;
    #: pFuzzer crash-hunting mode only).
    crash_inputs: List[str] = field(default_factory=list)
    #: Failure-site signatures parallel with ``crash_inputs`` (see
    #: :func:`repro.runtime.harness.failure_site`).
    crash_signatures: List[tuple] = field(default_factory=list)
    #: Path signatures parallel with ``crash_inputs``, persisted as
    #: ``"crash"``-kind corpus records.
    crash_path_signatures: List[int] = field(default_factory=list)


def validate_campaign(tool: str, subject_name: str) -> None:
    """Reject unknown tools/subjects up front, naming the valid choices.

    Raises:
        ValueError: unknown ``tool`` or ``subject_name``; the message lists
            every valid choice for whichever argument was wrong.
    """
    problems = []
    if tool not in _RUNNERS:
        problems.append(f"unknown tool {tool!r}; valid tools: {', '.join(TOOLS)}")
    if not is_known_subject(subject_name):
        problems.append(
            f"unknown subject {subject_name!r}; valid subjects: "
            f"{', '.join(available_subjects())}"
        )
    if problems:
        raise ValueError("; ".join(problems))


def run_campaign(
    tool: str,
    subject_name: str,
    budget: int,
    seed: int = 0,
    *,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume: bool = False,
    corpus_path: Optional[str] = None,
    trace_path: Optional[str] = None,
    executor: Optional[str] = None,
    batch_size: Optional[int] = None,
    executor_workers: Optional[int] = None,
    cull_every: Optional[int] = None,
    hybrid: bool = False,
    mine_after: Optional[int] = None,
    gen_batch: Optional[int] = None,
    gen_depth: Optional[int] = None,
    hunt_crashes: bool = False,
    subject_module: Optional[str] = None,
) -> ToolOutput:
    """Run ``tool`` on ``subject_name`` with an execution ``budget``.

    Args:
        tool: one of :data:`TOOLS`.
        subject_name: a registered subject.
        budget: execution budget for the run.
        seed: PRNG seed.
        checkpoint_dir: enable durable snapshots there (pFuzzer only; the
            baselines ignore durability options — they have no resumable
            state worth snapshotting and restart from scratch instead).
        checkpoint_every: snapshot cadence in executions (pFuzzer only).
        resume: restore the newest valid snapshot before fuzzing.
        corpus_path: append the run's valid inputs (with path signatures,
            when the tool reports them) to this
            :class:`~repro.eval.corpus_store.CorpusStore` file.
        trace_path: write an NDJSON campaign trace there (pFuzzer only;
            see :mod:`repro.obs.trace`).
        executor: pFuzzer execution engine (``"inline"``/``"pooled"``;
            see :mod:`repro.runtime.executor`).  None keeps the config
            default.  Engine choice never changes the campaign result.
        batch_size: speculative batch size for the pooled engine.
        executor_workers: persistent worker count for the pooled engine.
        cull_every: queue-hygiene cadence in executions (pFuzzer only;
            see :attr:`repro.core.config.FuzzerConfig.cull_every`).
            Environmental like ``executor`` — never changes the result.
        hybrid: run the pFuzzer campaign in hybrid mine/generate mode
            (see :mod:`repro.hybrid`).  Unlike the environmental knobs
            above this changes the campaign result and participates in
            the snapshot fingerprint.
        mine_after: hybrid gain-evidence/inter-phase floor (pFuzzer
            default when None).
        gen_batch: hybrid generated candidates per flood (pFuzzer
            default when None).
        gen_depth: hybrid compiled-generator flood depth budget (pFuzzer
            default when None).
        hunt_crashes: record crashing inputs as campaign findings
            (pFuzzer only; see
            :attr:`repro.core.config.FuzzerConfig.hunt_crashes`).  Like
            ``hybrid`` this changes the result and participates in the
            snapshot fingerprint.
        subject_module: import this module before resolving
            ``subject_name``, so plugin subjects registered via
            :func:`repro.subjects.registry.register_subject` at import
            time are available (the ``--subject-module`` CLI flag).
    """
    if subject_module is not None:
        load_subject_module(subject_module)
    validate_campaign(tool, subject_name)
    subject = load_subject(subject_name)
    durability = {}
    if checkpoint_dir is not None:
        durability["checkpoint_dir"] = checkpoint_dir
        durability["resume"] = resume
        if checkpoint_every is not None:
            durability["checkpoint_every"] = checkpoint_every
    if trace_path is not None:
        durability["trace_path"] = trace_path
    if executor is not None:
        durability["executor"] = executor
    if batch_size is not None:
        durability["batch_size"] = batch_size
    if executor_workers is not None:
        durability["executor_workers"] = executor_workers
    if cull_every is not None:
        durability["cull_every"] = cull_every
    if hybrid:
        durability["hybrid"] = True
        if mine_after is not None:
            durability["mine_after"] = mine_after
        if gen_batch is not None:
            durability["gen_batch"] = gen_batch
        if gen_depth is not None:
            durability["gen_depth"] = gen_depth
    if hunt_crashes:
        durability["hunt_crashes"] = True
    outcome = _RUNNERS[tool](subject, seed, budget, durability)
    output = ToolOutput(
        tool=tool,
        subject=subject_name,
        seed=seed,
        valid_inputs=list(outcome.valid_inputs),
        executions=outcome.executions,
        wall_time=outcome.wall_time,
        queue_depth=getattr(outcome, "queue_depth", None),
        phase_times=getattr(outcome, "phase_times", None),
        resumes=getattr(outcome, "resumes", 0),
        valid_signatures=list(getattr(outcome, "valid_signatures", None) or [])
        or None,
        crashes=getattr(outcome, "crashes", 0),
        crash_inputs=list(getattr(outcome, "crash_inputs", [])),
        crash_signatures=[
            tuple(sig) for sig in getattr(outcome, "crash_signatures", [])
        ],
        crash_path_signatures=list(
            getattr(outcome, "crash_path_signatures", [])
        ),
    )
    if corpus_path is not None:
        from repro.eval.corpus_store import CorpusStore

        CorpusStore(corpus_path).add_output(output)
    return output


def best_of(
    tool: str,
    subject_name: str,
    budget: int,
    metric: Callable[[ToolOutput], float],
    repetitions: int = 3,
    base_seed: int = 0,
) -> ToolOutput:
    """Best of N repetitions by ``metric`` (paper: "we report the best run")."""
    outputs = [
        run_campaign(tool, subject_name, budget, seed=base_seed + repetition)
        for repetition in range(repetitions)
    ]
    return max(outputs, key=metric)


def run_campaigns(
    subjects: Sequence[str],
    tools: Sequence[str],
    budgets: Optional[Dict[str, int]] = None,
    default_budget: int = 2_000,
    seed: int = 0,
) -> Dict[Tuple[str, str], ToolOutput]:
    """Run every (subject, tool) pair once; key the results by the pair."""
    results: Dict[Tuple[str, str], ToolOutput] = {}
    for subject_name in subjects:
        budget = (budgets or {}).get(subject_name, default_budget)
        for tool in tools:
            results[(subject_name, tool)] = run_campaign(
                tool, subject_name, budget, seed=seed
            )
    return results
