"""Figure 2: code coverage of the valid inputs per subject and tool.

The paper measures gcov branch coverage of the C subjects on each tool's
valid inputs.  Here each valid input is re-executed under the tracer and the
union of executed lines is reported as a percentage of the subject's
statically enumerated executable lines (see
:func:`repro.runtime.coverage.module_lines`).  Absolute percentages differ
from the paper's gcov numbers; the per-subject *ordering* of tools is the
reproduction target.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set, Tuple

from repro.runtime.coverage import Line, line_coverage_percent, module_lines
from repro.runtime.harness import run_subject
from repro.runtime.owners import owner_map
from repro.subjects.registry import load_subject


def coverage_of_inputs(subject_name: str, inputs: Iterable[str]) -> float:
    """Line-coverage percentage achieved by re-running ``inputs``."""
    subject = load_subject(subject_name)
    # Arcs are statement-owner normalised, so the universe must be too:
    # counting a multi-line statement once in the numerator but once per
    # physical line in the denominator would understate coverage.
    universe: Set[Line] = set()
    for module in subject.modules():
        for filename, line in module_lines(module):
            owners = owner_map(filename)
            universe.add((filename, owners.get(line, line)))
    covered: Set[Line] = set()
    for text in inputs:
        result = run_subject(subject, text)
        covered |= _lines_of(result)
    return line_coverage_percent(covered, frozenset(universe))


def _lines_of(result) -> Set[Line]:
    lines: Set[Line] = set()
    # Branches are interned ids; decode back to (filename, previous, line).
    for filename, previous, line in result.decoded_branches():
        lines.add((filename, line))
        if previous != 0:
            lines.add((filename, previous))
    return lines


def figure2(
    valid_inputs: Dict[Tuple[str, str], Sequence[str]],
    subjects: Sequence[str],
    tools: Sequence[str],
) -> Dict[Tuple[str, str], float]:
    """Coverage percentage per (subject, tool), from their valid inputs."""
    return {
        (subject, tool): coverage_of_inputs(
            subject, valid_inputs.get((subject, tool), ())
        )
        for subject in subjects
        for tool in tools
    }
