"""Persistent corpus store: append-only valid inputs with path signatures.

Where :mod:`repro.eval.corpus` keeps one campaign's outputs greppable, this
store is the *durable* corpus shared across tools, seeds and campaigns —
the on-disk artifact that survives crashes and feeds future runs:

* **append-only** — every record is one JSON line; appends never rewrite
  existing data, so a crash mid-append loses at most the half-written
  trailing line (which readers skip);
* **multi-writer safe** — each flush is a single ``write()`` on an
  ``O_APPEND`` descriptor, so concurrent appends from sharded campaigns
  (see :mod:`repro.eval.sync`) land as contiguous byte runs and can never
  interleave inside one another's lines;
* **path signatures** — pFuzzer records each emitted input's stable branch-
  path signature (:meth:`repro.runtime.arcs.ArcTable.signature`), so later
  analyses can reason about path diversity without re-executing the corpus;
* **compaction** — duplicates accumulate as campaigns are resumed and
  repeated; :meth:`CorpusStore.compact` atomically rewrites the file with
  one record per distinct ``(subject, input)`` pair, keeping the first
  occurrence (the earliest provenance).  With ``collapse_signatures=True``
  it additionally keeps only the first input per distinct
  ``(subject, path_signature)`` — a cheap path-diversity reduction; the
  coverage-exact version is :func:`repro.eval.distill.distill_store`.

Records are tagged with subject, tool and seed, so one store file can hold
an entire evaluation grid's corpus and still be filtered on read.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.eval.campaign import ToolOutput

PathLike = Union[str, Path]


@dataclass(frozen=True)
class CorpusRecord:
    """One stored valid input and its provenance."""

    subject: str
    tool: str
    seed: int
    input: str
    #: Stable blake2b-based signature of the execution's branch path;
    #: None for tools that do not report one.
    path_signature: Optional[int] = None
    #: ``"valid"`` (the default — a parser-accepted input) or ``"crash"``
    #: (a crash-hunting finding; see
    #: :attr:`repro.core.config.FuzzerConfig.hunt_crashes`).
    kind: str = "valid"
    #: Failure-site signature for ``"crash"`` records, as the
    #: ``(exception_type, file, line)`` tuple of
    #: :func:`repro.runtime.harness.failure_site`; None for valid records.
    crash_signature: Optional[tuple] = None

    def to_json_line(self) -> str:
        record = {
            "subject": self.subject,
            "tool": self.tool,
            "seed": self.seed,
            "input": self.input,
            "path_signature": self.path_signature,
        }
        # Valid records keep their pre-crash-hunting byte shape; only
        # crash findings carry the extra keys.
        if self.kind != "valid":
            record["kind"] = self.kind
            if self.crash_signature is not None:
                record["crash_signature"] = list(self.crash_signature)
        return json.dumps(record, ensure_ascii=True, separators=(",", ":"))

    @classmethod
    def from_json_line(cls, line: str) -> Optional["CorpusRecord"]:
        """Parse one line; None for malformed/foreign lines (skipped)."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or "input" not in record:
            return None
        crash_signature = record.get("crash_signature")
        try:
            return cls(
                subject=str(record.get("subject", "")),
                tool=str(record.get("tool", "")),
                seed=int(record.get("seed", 0)),
                input=record["input"],
                path_signature=record.get("path_signature"),
                kind=str(record.get("kind", "valid")),
                crash_signature=(
                    tuple(crash_signature)
                    if isinstance(crash_signature, list)
                    else None
                ),
            )
        except (TypeError, ValueError):
            return None


class CorpusStore:
    """Append-only JSONL corpus shared across tools, seeds and campaigns."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    # -- writes --------------------------------------------------------- #

    def add(
        self,
        subject: str,
        tool: str,
        seed: int,
        text: str,
        path_signature: Optional[int] = None,
    ) -> None:
        """Append one valid input."""
        self.add_records(
            [CorpusRecord(subject, tool, seed, text, path_signature)]
        )

    def add_records(self, records: List[CorpusRecord]) -> int:
        """Append records in one ``O_APPEND`` write; returns the count.

        The whole batch is serialised into one buffer and pushed through a
        single ``os.write`` on an ``O_APPEND`` descriptor: the kernel
        appends it as one contiguous byte run, so concurrent writers —
        shards syncing into a shared store — can interleave *between*
        flushes but never *inside* one, and every line stays parseable.
        """
        if not records:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        buffer = "".join(
            record.to_json_line() + "\n" for record in records
        ).encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            # A previous append may have been torn mid-line (crash before
            # the newline).  O_APPEND forbids a seek-and-patch, so fold the
            # fresh-line guard into the buffer itself; if a concurrent
            # writer repairs the tail first, the extra newline is a blank
            # line, which readers skip.
            size = os.fstat(fd).st_size
            if size > 0:
                with open(self.path, "rb") as tail:
                    tail.seek(size - 1)
                    if tail.read(1) != b"\n":
                        buffer = b"\n" + buffer
            view = memoryview(buffer)
            while view:  # one write in practice; loop guards short writes
                view = view[os.write(fd, view) :]
        finally:
            os.close(fd)
        return len(records)

    def add_output(self, output: ToolOutput) -> int:
        """Append one campaign's valid inputs; returns the count appended.

        Path signatures ride along when the tool reports them (pFuzzer);
        other tools store None.  Crash-hunting findings (deduplicated
        crashing inputs) are appended as ``"crash"``-kind records with
        their failure-site signatures.
        """
        signatures = output.valid_signatures or []
        records = [
            CorpusRecord(
                subject=output.subject,
                tool=output.tool,
                seed=output.seed,
                input=text,
                path_signature=(
                    signatures[index] if index < len(signatures) else None
                ),
            )
            for index, text in enumerate(output.valid_inputs)
        ]
        crash_inputs = getattr(output, "crash_inputs", None) or []
        crash_signatures = getattr(output, "crash_signatures", None) or []
        crash_paths = getattr(output, "crash_path_signatures", None) or []
        records.extend(
            CorpusRecord(
                subject=output.subject,
                tool=output.tool,
                seed=output.seed,
                input=text,
                path_signature=(
                    crash_paths[index] if index < len(crash_paths) else None
                ),
                kind="crash",
                crash_signature=(
                    tuple(crash_signatures[index])
                    if index < len(crash_signatures)
                    else None
                ),
            )
            for index, text in enumerate(crash_inputs)
        )
        return self.add_records(records)

    # -- reads ---------------------------------------------------------- #

    def records(
        self,
        subject: Optional[str] = None,
        tool: Optional[str] = None,
        seed: Optional[int] = None,
        kind: Optional[str] = None,
    ) -> Iterator[CorpusRecord]:
        """Yield stored records in file order, optionally filtered.

        Malformed lines — e.g. the half-written tail of an interrupted
        append — are skipped, never fatal.  ``kind`` filters on record
        kind (``"valid"`` / ``"crash"``); None yields every kind.
        """
        if not self.path.exists():
            return
        with open(self.path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = CorpusRecord.from_json_line(line)
                if record is None:
                    continue
                if subject is not None and record.subject != subject:
                    continue
                if tool is not None and record.tool != tool:
                    continue
                if seed is not None and record.seed != seed:
                    continue
                if kind is not None and record.kind != kind:
                    continue
                yield record

    def inputs(
        self,
        subject: Optional[str] = None,
        tool: Optional[str] = None,
    ) -> List[str]:
        """Stored input texts matching the filters, in file order."""
        return [record.input for record in self.records(subject, tool)]

    def initial_inputs(self, subject: str) -> Tuple[str, ...]:
        """Distinct inputs for a subject, first-seen order — ready to pass
        as :attr:`repro.core.config.FuzzerConfig.initial_inputs`."""
        seen = set()
        ordered = []
        # Only parser-accepted inputs seed future campaigns; crash
        # findings are repro artifacts, not seeds.
        for record in self.records(subject=subject, kind="valid"):
            if record.input not in seen:
                seen.add(record.input)
                ordered.append(record.input)
        return tuple(ordered)

    def __len__(self) -> int:
        return sum(1 for _ in self.records())

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-subject corpus shape, in one pass over the file.

        Returns a dict keyed by subject name, each value carrying
        ``records`` (stored lines), ``inputs`` (distinct input texts),
        ``signatures`` (distinct non-None path signatures) and
        ``crashes`` (distinct failure sites among ``"crash"`` records) —
        the numbers ``repro corpus stats`` prints.
        """
        records: Dict[str, int] = {}
        inputs: Dict[str, set] = {}
        signatures: Dict[str, set] = {}
        crashes: Dict[str, set] = {}
        for record in self.records():
            records[record.subject] = records.get(record.subject, 0) + 1
            inputs.setdefault(record.subject, set()).add(record.input)
            if record.path_signature is not None:
                signatures.setdefault(record.subject, set()).add(
                    record.path_signature
                )
            if record.kind == "crash":
                crashes.setdefault(record.subject, set()).add(
                    record.crash_signature or record.input
                )
        return {
            subject: {
                "records": records[subject],
                "inputs": len(inputs[subject]),
                "signatures": len(signatures.get(subject, ())),
                "crashes": len(crashes.get(subject, ())),
            }
            for subject in sorted(records)
        }

    # -- maintenance ---------------------------------------------------- #

    def compact(self, collapse_signatures: bool = False) -> Tuple[int, int]:
        """Drop duplicate ``(subject, input)`` records, keeping the first.

        With ``collapse_signatures`` True, distinct inputs sharing a
        ``(subject, path_signature)`` pair are also collapsed to the first
        occurrence — inputs driving the parser down the same branch path
        are redundant for path-diversity purposes.  Records without a
        signature are never collapsed this way.

        The rewrite is atomic (temp file + ``os.replace``): readers never
        observe a partially compacted store, and a crash mid-compaction
        leaves the original file untouched.

        Returns:
            ``(kept, dropped)`` record counts.
        """
        if not self.path.exists():
            return (0, 0)
        kept: List[CorpusRecord] = []
        seen = set()
        seen_signatures = set()
        dropped = 0
        for record in self.records():
            # Kind-qualified keys: a crash finding never collapses into a
            # valid record that happens to share its text (or vice versa).
            key = (record.subject, record.kind, record.input)
            if key in seen:
                dropped += 1
                continue
            if collapse_signatures and record.path_signature is not None:
                signature_key = (
                    record.subject,
                    record.kind,
                    record.path_signature,
                )
                if signature_key in seen_signatures:
                    dropped += 1
                    continue
                seen_signatures.add(signature_key)
            seen.add(key)
            kept.append(record)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".corpus-tmp-", suffix=".jsonl", dir=self.path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for record in kept:
                    handle.write(record.to_json_line() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return (len(kept), dropped)
