"""Durable campaign snapshots: versioned, atomic, checksummed.

A checkpoint is one JSON file holding a complete :class:`~repro.core.fuzzer.
PFuzzer` state — candidate queue with its cached scores and heap order,
``vBr``, the valid corpus, RNG position and budget consumed — wrapped in an
envelope that makes interrupted writes detectable:

* **atomic writes** — the payload is written to a temporary file in the
  same directory, fsynced, and ``os.replace``d into place, so a crash mid-
  write can never leave a half-written file under the final name;
* **checksums** — the envelope stores a blake2b digest of the canonical
  payload JSON; a truncated or bit-flipped file fails verification and is
  skipped rather than restored;
* **generations** — every write gets the next generation number and the
  previous ``keep`` generations are retained, so even a corrupted latest
  file (e.g. a torn write on a non-atomic filesystem) falls back to the
  previous good snapshot instead of losing the campaign.

Branch arcs are process-local interned ids (:mod:`repro.runtime.arcs`), so
snapshots never store raw ids: every referenced arc is decoded through the
subject's :class:`~repro.runtime.arcs.ArcTable` into its stable tuple form
and re-interned on restore.  :func:`pack_arc_ids` / :class:`ArcUnpacker`
implement that translation; everything downstream of them (scores, counts,
path signatures) is id-independent by construction.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
from hashlib import blake2b
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.runtime.arcs import ArcTable

PathLike = Union[str, Path]

#: File-format magic; rejects files that are not checkpoints at all.
MAGIC = "repro-checkpoint"

#: Bumped on any payload field rename/retyping; additions keep the version.
FORMAT_VERSION = 1

#: Default number of snapshot generations retained on disk.
DEFAULT_KEEP = 2

_FILE_RE = re.compile(r"^ckpt-(\d{8})\.json$")


class CheckpointError(Exception):
    """A checkpoint file is missing, corrupt, or incompatible."""


def atomic_write_text(
    target: PathLike, text: str, *, encoding: str = "ascii"
) -> Path:
    """Write ``text`` to ``target`` with the crash-safe discipline.

    Temporary file in the same directory, fsync, then ``os.replace`` — the
    write either completes or never happens under the final name.  Shared
    by snapshot writes here and the campaign service's journal compaction
    (:mod:`repro.service.jobs`).
    """
    target = Path(target)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}-tmp-", dir=target.parent
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


# --------------------------------------------------------------------- #
# Arc translation
# --------------------------------------------------------------------- #


def _tuplify(value):
    """Recursively convert JSON lists back into the tuples arcs are made of."""
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


def pack_arc_ids(id_sets: Iterable[Iterable[int]], table: ArcTable):
    """Translate process-local arc ids into snapshot-local ids.

    Args:
        id_sets: every set of interned arc ids the snapshot references.
        table: the subject's arc table that interned them.

    Returns:
        ``(arcs, mapping)`` where ``arcs`` is the canonical (repr-sorted)
        list of decoded arc tuples and ``mapping`` maps each process-local
        id to its index in ``arcs``.  The repr sort makes the snapshot
        byte-stable regardless of intern order, which the round-trip
        fixed-point property relies on.
    """
    used = set()
    for ids in id_sets:
        used.update(ids)
    decoded = {arc_id: table.arc(arc_id) for arc_id in used}
    ordered = sorted(decoded.items(), key=lambda item: repr(item[1]))
    mapping = {arc_id: index for index, (arc_id, _) in enumerate(ordered)}
    return [arc for _, arc in ordered], mapping


class ArcUnpacker:
    """Re-intern a snapshot's arc list into a (possibly fresh) arc table."""

    def __init__(self, arcs: List, table: ArcTable) -> None:
        self._ids = [table.intern(_tuplify(arc)) for arc in arcs]

    def ids(self, local_ids: Iterable[int]):
        """Translate snapshot-local ids back to process-local interned ids."""
        lookup = self._ids
        return frozenset(lookup[local] for local in local_ids)


# --------------------------------------------------------------------- #
# Envelope
# --------------------------------------------------------------------- #


def _canonical_payload(payload: dict) -> str:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def _payload_checksum(canonical: str) -> str:
    return blake2b(canonical.encode("ascii"), digest_size=16).hexdigest()


def _generation_path(directory: Path, generation: int) -> Path:
    return directory / f"ckpt-{generation:08d}.json"


def list_generations(directory: PathLike) -> List[int]:
    """Generation numbers present in ``directory`` (sorted, no validation)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    generations = []
    for name in os.listdir(directory):
        match = _FILE_RE.match(name)
        if match:
            generations.append(int(match.group(1)))
    return sorted(generations)


def save_snapshot(
    directory: PathLike,
    payload: dict,
    *,
    generation: Optional[int] = None,
    keep: int = DEFAULT_KEEP,
) -> Path:
    """Atomically write ``payload`` as the next snapshot generation.

    Args:
        directory: checkpoint directory (created if missing).
        payload: JSON-serialisable snapshot (see ``PFuzzer.snapshot``).
        generation: explicit generation number; default is latest + 1.
        keep: retain this many newest generations, delete the rest.

    Returns:
        the path of the written checkpoint file.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = list_generations(directory)
    if generation is None:
        generation = (existing[-1] + 1) if existing else 1
    canonical = _canonical_payload(payload)
    envelope = {
        "magic": MAGIC,
        "version": FORMAT_VERSION,
        "generation": generation,
        "checksum": _payload_checksum(canonical),
        "payload": payload,
    }
    target = atomic_write_text(
        _generation_path(directory, generation),
        json.dumps(envelope, ensure_ascii=True),
    )
    for old in existing:
        if old <= generation - keep:
            try:
                _generation_path(directory, old).unlink()
            except OSError:  # pragma: no cover - raced deletion
                pass
    return target


def load_snapshot(path: PathLike) -> Tuple[int, dict]:
    """Load and verify one checkpoint file.

    Returns:
        ``(generation, payload)``.

    Raises:
        CheckpointError: the file is unreadable, not a checkpoint, from an
            unsupported format version, or fails its checksum (truncated or
            corrupted write).
    """
    path = Path(path)
    try:
        raw = path.read_text(encoding="ascii")
    except (OSError, UnicodeDecodeError) as exc:
        raise CheckpointError(f"{path}: unreadable ({exc})") from None
    try:
        envelope = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CheckpointError(f"{path}: malformed JSON ({exc})") from None
    if not isinstance(envelope, dict) or envelope.get("magic") != MAGIC:
        raise CheckpointError(f"{path}: not a {MAGIC} file")
    version = envelope.get("version")
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: unsupported checkpoint format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError(f"{path}: missing payload")
    checksum = _payload_checksum(_canonical_payload(payload))
    if checksum != envelope.get("checksum"):
        raise CheckpointError(f"{path}: checksum mismatch (truncated write?)")
    generation = envelope.get("generation")
    if not isinstance(generation, int):
        raise CheckpointError(f"{path}: missing generation number")
    return generation, payload


def load_latest(
    directory: PathLike,
) -> Optional[Tuple[int, dict]]:
    """Newest *valid* snapshot in ``directory``, or None when there is none.

    Corrupt or truncated generations are skipped (never restored), falling
    back to the previous generation — the crash-safety contract for writes
    interrupted by SIGKILL or power loss.
    """
    directory = Path(directory)
    for generation in reversed(list_generations(directory)):
        try:
            return load_snapshot(_generation_path(directory, generation))
        except CheckpointError:
            continue
    return None


def purge(directory: PathLike) -> int:
    """Delete every checkpoint generation in ``directory``; returns count."""
    directory = Path(directory)
    removed = 0
    for generation in list_generations(directory):
        try:
            _generation_path(directory, generation).unlink()
            removed += 1
        except OSError:  # pragma: no cover - raced deletion
            pass
    return removed


# --------------------------------------------------------------------- #
# Canonical campaign results
# --------------------------------------------------------------------- #


def result_fingerprint(result, arc_table: Optional[ArcTable] = None) -> str:
    """Canonical JSON form of a :class:`FuzzingResult` for equivalence tests.

    Everything the determinism contract covers — inputs, emit log, counters
    and coverage — with branches decoded to their stable tuple form (interned
    ids are process-local and therefore excluded).  Wall time, per-phase
    timings and the resume counter are excluded: they are the parts of a
    resumed campaign that legitimately differ from an uninterrupted one.
    """
    branches = sorted(
        repr(arc) for arc in (
            arc_table.decode(result.valid_branches)
            if arc_table is not None
            else result.valid_branches
        )
    )
    return json.dumps(
        {
            "valid_inputs": list(result.valid_inputs),
            "all_valid": list(result.all_valid),
            "executions": result.executions,
            "rejected": result.rejected,
            "hangs": result.hangs,
            "crashes": getattr(result, "crashes", 0),
            "crash_inputs": list(getattr(result, "crash_inputs", [])),
            "crash_signatures": [
                list(sig) for sig in getattr(result, "crash_signatures", [])
            ],
            "emit_log": [list(entry) for entry in result.emit_log],
            "valid_signatures": list(result.valid_signatures),
            "valid_lineage": list(getattr(result, "valid_lineage", [])),
            "valid_branches": branches,
            "queue_depth": result.queue_depth,
        },
        sort_keys=True,
        ensure_ascii=True,
    )
