"""Corpus-sync protocol for sharded campaigns (DESIGN.md §8).

Shards exchange valid inputs through one shared
:class:`~repro.eval.corpus_store.CorpusStore` JSONL file — AFL's
``-M/-S`` sync directory collapsed into a single append-only log.  The
protocol is two halves, both driven from the fuzzer's iteration boundary
(:meth:`repro.core.fuzzer.PFuzzer._maybe_sync`):

* **push** — the shard appends every valid input it has emitted since the
  last sync as one batch (a single ``O_APPEND`` write, so concurrent
  shard pushes never interleave bytes);
* **pull** — the shard reads records appended by *other* shards since its
  stored byte offset, dedupes by ``(subject, path_signature)`` against
  everything it has already pushed or imported, and queues the survivors
  as ``"sync"``-lineage candidates.

Determinism invariants (verified by the cross-shard harness in
``tests/eval/test_resume_equivalence.py``):

1. Sync points are a pure function of the executions counter
   (``sync_every`` cadence), never of wall time, so a killed and resumed
   shard syncs exactly where the uninterrupted run did.
2. Imported records are canonicalised — sorted by input text — before
   queueing, so the import order is independent of the interleaving of
   other shards' pushes within a sync window.
3. The syncer's cursor (``seen signatures``, push watermark, read offset)
   snapshots with the campaign, and a resumed shard that re-pushes inputs
   already in the store is harmless: signature dedupe makes re-imports
   no-ops on every other shard.
4. A store shrink (``compact`` / ``distill`` ran underneath) is detected
   by offset > file size; the cursor resets to 0 and signature dedupe
   absorbs the re-read.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.eval.corpus_store import CorpusRecord, CorpusStore


class CorpusSyncer:
    """One shard's cursor into a shared corpus store.

    Args:
        store: the shared JSONL store (one per shard group).
        subject: subject name used to tag and filter records.
        tool: provenance tag stored on pushed records.
        seed: this shard's seed, stored on pushed records (provenance
            only; pulls ignore it).
    """

    def __init__(
        self, store: CorpusStore, subject: str, tool: str, seed: int
    ) -> None:
        self.store = store
        self.subject = subject
        self.tool = tool
        self.seed = seed
        #: Signatures this shard has pushed or imported; the dedupe set.
        self.seen_signatures: Set[int] = set()
        #: How many of the campaign's ``valid_inputs`` are already pushed.
        self.pushed_count = 0
        #: Byte offset up to which the store has been read.
        self.read_offset = 0

    # -- protocol halves ------------------------------------------------ #

    def push(
        self, valid_inputs: List[str], valid_signatures: List[int]
    ) -> int:
        """Append this shard's not-yet-pushed valid inputs; returns count.

        Inputs whose signature was already pushed or imported are skipped
        (they add no path diversity to the shared store), but the
        watermark always advances to the end of ``valid_inputs``.
        """
        fresh: List[CorpusRecord] = []
        for index in range(self.pushed_count, len(valid_inputs)):
            signature = valid_signatures[index]
            if signature in self.seen_signatures:
                continue
            self.seen_signatures.add(signature)
            fresh.append(
                CorpusRecord(
                    subject=self.subject,
                    tool=self.tool,
                    seed=self.seed,
                    input=valid_inputs[index],
                    path_signature=signature,
                )
            )
        self.pushed_count = len(valid_inputs)
        if fresh:
            self.store.add_records(fresh)
        return len(fresh)

    def pull(self) -> List[CorpusRecord]:
        """Read records other shards appended since the last pull.

        Returns the imported records sorted by input text (canonical
        order, invariant 2), with signature dedupe already applied and
        the dedupe set updated.  The caller decides what to do with them
        (the fuzzer queues each as a ``"sync"`` candidate).
        """
        records, self.read_offset = self._read_from(self.read_offset)
        imported: List[CorpusRecord] = []
        for record in records:
            if record.subject != self.subject:
                continue
            if record.path_signature is None:
                continue
            if record.path_signature in self.seen_signatures:
                continue
            self.seen_signatures.add(record.path_signature)
            imported.append(record)
        imported.sort(key=lambda record: record.input)
        return imported

    def _read_from(self, offset: int) -> Tuple[List[CorpusRecord], int]:
        """Parse complete records from ``offset``; returns (records, new
        offset).  The new offset stops before a torn trailing line so a
        later pull re-reads it once complete."""
        path = self.store.path
        if not path.exists():
            return ([], 0)
        size = path.stat().st_size
        if offset > size:
            # The store shrank underneath us (compact/distill): restart
            # from the top; signature dedupe absorbs the re-read.
            offset = 0
        if offset >= size:
            return ([], offset)
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
        end = data.rfind(b"\n")
        if end < 0:
            return ([], offset)
        records: List[CorpusRecord] = []
        for line in data[: end + 1].splitlines():
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            record = CorpusRecord.from_json_line(text)
            if record is not None:
                records.append(record)
        return (records, offset + end + 1)

    # -- snapshot integration (see repro.core.fuzzer) -------------------- #

    def to_payload(self) -> dict:
        """JSON-safe cursor state for campaign snapshots."""
        return {
            "seen_signatures": sorted(self.seen_signatures),
            "pushed_count": self.pushed_count,
            "read_offset": self.read_offset,
        }

    def restore_payload(self, payload: Optional[dict]) -> None:
        """Restore :meth:`to_payload` state (None/missing -> fresh)."""
        if not payload:
            return
        self.seen_signatures = set(payload["seen_signatures"])
        self.pushed_count = payload["pushed_count"]
        self.read_offset = payload["read_offset"]
