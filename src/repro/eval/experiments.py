"""One-call experiment runner: regenerate every table and figure.

:func:`run_all` executes the full evaluation (campaigns for every subject
and tool, token and code coverage, the §5.3 aggregates) and returns an
:class:`ExperimentReport`; :func:`render_markdown` turns it into a
standalone markdown document.  The benchmark suite covers the same ground
with pytest-benchmark timing; this module is the library API for users who
want the numbers programmatically::

    from repro.eval.experiments import run_all, render_markdown
    report = run_all(budgets={"ini": 1000, ...}, seeds=(0, 1))
    print(render_markdown(report))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.eval.campaign import run_campaign
from repro.eval.code_cov import coverage_of_inputs
from repro.eval.report import (
    render_aggregates,
    render_figure2,
    render_figure3,
    render_table1,
    render_token_table,
)
from repro.eval.token_cov import (
    PAPER_AGGREGATE_LONG,
    PAPER_AGGREGATE_SHORT,
    TokenCoverage,
    aggregate_by_length,
    token_coverage,
)
from repro.subjects.registry import SUBJECT_NAMES

DEFAULT_BUDGETS: Dict[str, int] = {
    "ini": 2_000,
    "csv": 2_000,
    "json": 3_000,
    "tinyc": 4_000,
    "mjs": 6_000,
}

DEFAULT_TOOLS: Tuple[str, ...] = ("afl", "klee", "pfuzzer")


@dataclass
class ExperimentReport:
    """Everything the evaluation produces, keyed by (subject, tool)."""

    subjects: Tuple[str, ...]
    tools: Tuple[str, ...]
    valid_inputs: Dict[Tuple[str, str], List[str]] = field(default_factory=dict)
    executions: Dict[Tuple[str, str], int] = field(default_factory=dict)
    token_coverages: Dict[Tuple[str, str], TokenCoverage] = field(default_factory=dict)
    code_coverage: Dict[Tuple[str, str], float] = field(default_factory=dict)
    aggregate_short: Dict[str, float] = field(default_factory=dict)
    aggregate_long: Dict[str, float] = field(default_factory=dict)


def run_all(
    budgets: Optional[Dict[str, int]] = None,
    tools: Sequence[str] = DEFAULT_TOOLS,
    subjects: Sequence[str] = SUBJECT_NAMES,
    seeds: Sequence[int] = (0, 3, 8),
    measure_code_coverage: bool = True,
    jobs: int = 1,
    timeout: Optional[float] = None,
    metrics_path: Optional[str] = None,
    progress=None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    resume_retries: int = 2,
    corpus_path: Optional[str] = None,
    trace_dir: Optional[str] = None,
) -> ExperimentReport:
    """Run the whole evaluation grid; best-of-``seeds`` per campaign.

    With ``jobs > 1`` (or ``metrics_path``/``timeout``/``progress``/
    ``checkpoint_dir``/``corpus_path`` set) the (subject, tool, seed) grid
    runs on the fault-isolated pool of :mod:`repro.eval.parallel`; per-run
    determinism makes the report identical to the sequential path for the
    same seeds.  Failed or timed-out cells contribute an empty corpus
    instead of aborting the grid.  ``checkpoint_dir`` makes the grid
    durable (crashed/killed/timed-out cells resume from their last
    snapshot; see :mod:`repro.eval.checkpoint`) and ``corpus_path``
    persists every cell's valid inputs to a shared
    :class:`~repro.eval.corpus_store.CorpusStore`.
    """
    budgets = {**DEFAULT_BUDGETS, **(budgets or {})}
    report = ExperimentReport(tuple(subjects), tuple(tools))
    parallel_outputs = None
    if (
        jobs > 1
        or metrics_path is not None
        or timeout is not None
        or progress
        or checkpoint_dir is not None
        or corpus_path is not None
        or trace_dir is not None
    ):
        from repro.eval.campaign import ToolOutput
        from repro.eval.parallel import RunSpec, run_grid

        specs = [
            RunSpec(tool, subject, budgets[subject], seed)
            for subject in subjects
            for tool in tools
            for seed in seeds
        ]
        records = run_grid(
            specs,
            jobs=jobs,
            timeout=timeout,
            metrics_path=metrics_path,
            progress=progress,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            resume_retries=resume_retries,
            corpus_path=corpus_path,
            trace_dir=trace_dir,
        )
        parallel_outputs = {
            (record.spec.subject, record.spec.tool, record.spec.seed): (
                record.output
                if record.output is not None
                else ToolOutput(
                    tool=record.spec.tool,
                    subject=record.spec.subject,
                    seed=record.spec.seed,
                )
            )
            for record in records
        }
    for subject in subjects:
        for tool in tools:
            best: Optional[TokenCoverage] = None
            best_inputs: List[str] = []
            best_execs = 0
            for seed in seeds:
                if parallel_outputs is not None:
                    output = parallel_outputs[(subject, tool, seed)]
                else:
                    output = run_campaign(tool, subject, budgets[subject], seed=seed)
                coverage = token_coverage(subject, output.valid_inputs)
                if best is None or coverage.total_found > best.total_found:
                    best = coverage
                    best_inputs = list(output.valid_inputs)
                    best_execs = output.executions
            key = (subject, tool)
            report.valid_inputs[key] = best_inputs
            report.executions[key] = best_execs
            report.token_coverages[key] = best if best is not None else token_coverage(subject, [])
            if measure_code_coverage:
                report.code_coverage[key] = coverage_of_inputs(subject, best_inputs)
    for tool in tools:
        coverages = [report.token_coverages[(subject, tool)] for subject in subjects]
        short, long_ = aggregate_by_length(coverages)
        report.aggregate_short[tool] = short
        report.aggregate_long[tool] = long_
    return report


def render_markdown(report: ExperimentReport) -> str:
    """The full evaluation as one markdown document."""
    sections: List[str] = [
        "# Evaluation report",
        "",
        "## Table 1 — subjects",
        "",
        "```",
        render_table1(),
        "```",
    ]
    for subject, number in (("json", 2), ("tinyc", 3), ("mjs", 4)):
        sections += [
            "",
            f"## Table {number} — {subject} tokens",
            "",
            "```",
            render_token_table(subject),
            "```",
        ]
    if report.code_coverage:
        sections += [
            "",
            "## Figure 2 — code coverage",
            "",
            "```",
            render_figure2(report.code_coverage, report.subjects, report.tools),
            "```",
        ]
    sections += [
        "",
        "## Figure 3 — tokens generated by token length",
        "",
        "```",
        render_figure3(report.token_coverages, report.subjects, report.tools),
        "```",
        "",
        "## §5.3 aggregates (measured)",
        "",
        "```",
        render_aggregates(report.aggregate_short, report.aggregate_long),
        "```",
        "",
        "## §5.3 aggregates (paper)",
        "",
        "```",
        render_aggregates(PAPER_AGGREGATE_SHORT, PAPER_AGGREGATE_LONG),
        "```",
        "",
    ]
    return "\n".join(sections)
