"""Command-line interface.

Subcommands mirror the workflows in the paper's evaluation:

* ``fuzz``     — run pFuzzer on a subject and print the valid inputs;
* ``compare``  — run pFuzzer and the baselines with equal budgets and print
  the Figure 2 / Figure 3 style reports for one subject;
* ``tokens``   — print a subject's token inventory (Tables 2–4);
* ``mine``     — fuzz, mine a grammar from the valid inputs, and print it;
* ``subjects`` — list the available subjects (Table 1);
* ``corpus``   — persistent corpus stores: ``stats`` / ``list`` /
  ``compact`` / ``distill`` (greedy arc-coverage-preserving minimisation);
* ``trace``    — query a campaign's NDJSON trace: derivation lineage of an
  emitted input, Chrome-tracing export, or schema validation;
* ``serve``    — run the resident campaign service (job queue, preemptive
  scheduler, HTTP control plane);
* ``submit`` / ``status`` / ``cancel`` — talk to a running service.

Examples::

    python -m repro fuzz json --budget 2000 --seed 3
    python -m repro fuzz json --checkpoint-dir ck/ --resume --corpus corpus.jsonl
    python -m repro fuzz json --shards 4 --budget 2000 --checkpoint-dir group/
    python -m repro fuzz json --trace trace.ndjson
    python -m repro compare tinyc --budget 4000
    python -m repro compare json --jobs 4 --metrics metrics.jsonl
    python -m repro compare json --jobs 4 --checkpoint-dir ck/ --corpus corpus.jsonl
    python -m repro tokens mjs
    python -m repro mine expr
    python -m repro corpus stats corpus.jsonl
    python -m repro corpus compact corpus.jsonl --collapse-signatures
    python -m repro corpus distill corpus.jsonl --subject json
    python -m repro trace lineage trace.ndjson '(9)'
    python -m repro trace chrome trace.ndjson -o spans.json
    python -m repro trace validate trace.ndjson
    python -m repro serve --state-dir service/ --port 8321 --workers 4
    python -m repro submit json --budget 5000 --priority 2 --wait --trace
    python -m repro submit json --budget 5000 --shards 4 --sync-every 250

Exit codes: 0 on success, 1 when a parallel campaign cell failed or timed
out (the rest of the grid still completes and prints), 2 on usage errors
(argparse).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.campaign import TOOLS, run_campaign
from repro.eval.code_cov import coverage_of_inputs
from repro.eval.report import (
    render_figure2,
    render_figure3,
    render_table1,
    render_token_table,
)
from repro.eval.token_cov import figure3
from repro.runtime.executor import EXECUTOR_MODES
from repro.runtime.harness import COVERAGE_BACKENDS
from repro.subjects.registry import (
    SUBJECT_NAMES,
    available_subjects,
    is_known_subject,
    load_subject,
    load_subject_module,
)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {text!r}"
        )
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive number, got {text!r}"
        ) from None
    if not value > 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {text!r}")
    return value


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the campaign grid (default: 1, sequential)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write one JSONL metrics record per campaign run to PATH",
    )
    parser.add_argument(
        "--timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-run wall-clock limit; timed-out runs are reported, not fatal",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="durable snapshots: every grid cell checkpoints into its own "
        "subdirectory of DIR and crashed/killed/timed-out cells resume "
        "from their last snapshot",
    )
    parser.add_argument(
        "--checkpoint-every", type=_positive_int, default=None, metavar="N",
        help="snapshot cadence in executions (default: the fuzzer's own)",
    )
    parser.add_argument(
        "--resume-retries", type=_nonnegative_int, default=2, metavar="N",
        help="with --checkpoint-dir: extra resume attempts for timed-out "
        "cells (default: 2)",
    )
    parser.add_argument(
        "--corpus", metavar="PATH", default=None,
        help="append every run's valid inputs (with path signatures) to "
        "this persistent corpus store",
    )
    parser.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="write each pFuzzer cell's NDJSON campaign trace to "
        "<tool>-<subject>-s<seed>.ndjson under DIR",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parser-directed fuzzing (PLDI 2019) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run pFuzzer on a subject")
    # An open string, not choices=: plugin subjects (registered by
    # --subject-module or entry points) are validated after imports run.
    fuzz.add_argument(
        "subject", metavar="SUBJECT",
        help="a built-in subject "
        f"({', '.join(SUBJECT_NAMES + ('expr',))}) or a plugin subject "
        "(see --subject-module)",
    )
    fuzz.add_argument(
        "--subject-module", metavar="MODULE", default=None,
        help="import MODULE first; modules register plugin subjects via "
        "repro.subjects.registry.register_subject at import time",
    )
    fuzz.add_argument(
        "--budget", type=_positive_int, default=2_000, help="execution budget"
    )
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--all-valid",
        action="store_true",
        help="print every accepted input, not only new-coverage ones",
    )
    fuzz.add_argument(
        "--coverage-backend",
        choices=COVERAGE_BACKENDS,
        default="settrace",
        help="coverage tracer: settrace (reference) or ast (compiled-in, faster)",
    )
    fuzz.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write durable campaign snapshots to DIR (see --resume)",
    )
    fuzz.add_argument(
        "--checkpoint-every", type=_positive_int, default=None, metavar="N",
        help="snapshot every N executions (default: 500)",
    )
    fuzz.add_argument(
        "--resume", action="store_true",
        help="restore the newest valid snapshot from --checkpoint-dir "
        "before fuzzing; the resumed campaign is byte-identical to an "
        "uninterrupted one",
    )
    fuzz.add_argument(
        "--corpus", metavar="PATH", default=None,
        help="append the run's valid inputs (with path signatures) to "
        "this persistent corpus store",
    )
    fuzz.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a structured NDJSON campaign trace to PATH "
        "(inspect it with 'repro trace ...')",
    )
    fuzz.add_argument(
        "--shards", type=_positive_int, default=1, metavar="N",
        help="run N shard-aware campaigns in deterministic lockstep rounds, "
        "sharing valid inputs through one corpus store (DESIGN.md §8); "
        "shard i uses seed SEED+i",
    )
    fuzz.add_argument(
        "--sync-every", type=_positive_int, default=None, metavar="N",
        help="with --shards: corpus-sync cadence in executions "
        "(default: once per round)",
    )
    fuzz.add_argument(
        "--slice-executions", type=_positive_int, default=200, metavar="N",
        help="with --shards: round length in executions (default: 200)",
    )
    fuzz.add_argument(
        "--executor", choices=EXECUTOR_MODES, default="inline",
        help="execution engine: inline (reference, in-process) or pooled "
        "(persistent forked-worker executor; identical results, lower "
        "per-candidate fixed cost — see DESIGN.md §9)",
    )
    fuzz.add_argument(
        "--batch-size", type=_positive_int, default=1, metavar="N",
        help="with --executor pooled: speculative candidates submitted per "
        "round-trip (default: 1 — no speculation)",
    )
    fuzz.add_argument(
        "--cull-every", type=_positive_int, default=None, metavar="N",
        help="drop dead/dominated queue entries every N executions "
        "(queue hygiene; never changes the campaign result — "
        "see DESIGN.md §10)",
    )
    fuzz.add_argument(
        "--hybrid", action="store_true",
        help="hybrid campaign mode: mine a grammar whenever the "
        "coverage-gain posterior plateaus and flood compiled-generator "
        "candidates back into the corpus (DESIGN.md §11)",
    )
    fuzz.add_argument(
        "--mine-after", type=_positive_int, default=600, metavar="N",
        help="with --hybrid: gain-evidence floor before a plateau may "
        "trigger a mining phase, and the floor between phases "
        "(default: 600)",
    )
    fuzz.add_argument(
        "--gen-batch", type=_positive_int, default=32, metavar="N",
        help="with --hybrid: maximum generated candidates injected per "
        "generation flood (default: 32)",
    )
    fuzz.add_argument(
        "--gen-depth", type=_positive_int, default=3, metavar="N",
        help="with --hybrid: compiled-generator depth budget during "
        "floods (default: 3; deeper floods suit subjects whose coverage "
        "lives in deep input structure)",
    )
    fuzz.add_argument(
        "--hunt-crashes", action="store_true",
        help="record crashing inputs as findings: deduplicated by "
        "failure-site signature, stored as 'crash'-kind corpus records "
        "with --corpus, and emitted as crash_found trace events",
    )

    compare = sub.add_parser("compare", help="pFuzzer vs AFL vs KLEE on one subject")
    compare.add_argument("subject", choices=SUBJECT_NAMES)
    compare.add_argument("--budget", type=_positive_int, default=2_000)
    compare.add_argument("--seed", type=int, default=3)
    compare.add_argument(
        "--tools", nargs="+", choices=TOOLS, default=["afl", "klee", "pfuzzer"]
    )
    _add_parallel_options(compare)

    tokens = sub.add_parser("tokens", help="print a subject's token inventory")
    tokens.add_argument("subject", choices=SUBJECT_NAMES)

    mine = sub.add_parser("mine", help="fuzz, then mine a grammar (§7.4)")
    mine.add_argument("subject", choices=SUBJECT_NAMES + ("expr",))
    mine.add_argument("--budget", type=_positive_int, default=800)
    mine.add_argument("--seed", type=int, default=1)
    mine.add_argument("--generate", type=int, default=0, metavar="N",
                      help="also generate N inputs from the mined grammar")
    mine.add_argument(
        "--coverage-backend",
        choices=COVERAGE_BACKENDS,
        default="settrace",
        help="coverage tracer: settrace (reference) or ast (compiled-in, faster)",
    )

    sub.add_parser("subjects", help="list available subjects (Table 1)")

    report = sub.add_parser(
        "report", help="run the full evaluation and print a markdown report"
    )
    report.add_argument("--budget", type=_positive_int, default=None,
                        help="override every subject's execution budget")
    report.add_argument("--subjects", nargs="+", choices=SUBJECT_NAMES,
                        default=list(SUBJECT_NAMES))
    report.add_argument("--tools", nargs="+", choices=TOOLS,
                        default=["afl", "klee", "pfuzzer"])
    report.add_argument("--seeds", nargs="+", type=int, default=[0, 3, 8])
    report.add_argument("--no-code-coverage", action="store_true")
    _add_parallel_options(report)

    corpus = sub.add_parser(
        "corpus", help="inspect, compact, or distill a persistent corpus store"
    )
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)

    corpus_stats = corpus_sub.add_parser(
        "stats",
        help="per-subject record / distinct-input / distinct-signature counts",
    )
    corpus_stats.add_argument("path", metavar="PATH", help="corpus store JSONL file")
    # --subject is an open string for all corpus subcommands: stores may
    # hold records for plugin subjects the current process never imported.
    corpus_stats.add_argument(
        "--subject", default=None, metavar="SUBJECT",
        help="restrict to one subject",
    )

    corpus_list = corpus_sub.add_parser(
        "list", help="print one line per stored record"
    )
    corpus_list.add_argument("path", metavar="PATH", help="corpus store JSONL file")
    corpus_list.add_argument(
        "--subject", default=None, metavar="SUBJECT",
        help="restrict to one subject",
    )
    corpus_list.add_argument(
        "--crashes", action="store_true",
        help="list only crash findings (records written by --hunt-crashes), "
        "with their failure-site signatures",
    )

    corpus_compact = corpus_sub.add_parser(
        "compact",
        help="drop duplicate (subject, input) records, keeping the first",
    )
    corpus_compact.add_argument(
        "path", metavar="PATH", help="corpus store JSONL file"
    )
    corpus_compact.add_argument(
        "--collapse-signatures", action="store_true",
        help="also keep only the first record per (subject, path signature): "
        "different inputs that drive the parser down the same decision "
        "path collapse to one representative",
    )

    corpus_distill = corpus_sub.add_parser(
        "distill",
        help="shrink each subject's records to a greedy minimal set "
        "covering the same union of execution arcs",
    )
    corpus_distill.add_argument(
        "path", metavar="PATH", help="corpus store JSONL file"
    )
    corpus_distill.add_argument(
        "--subject", default=None, metavar="SUBJECT",
        help="distill only this subject (default: every subject in the store)",
    )
    corpus_distill.add_argument(
        "--coverage-backend", choices=COVERAGE_BACKENDS, default="settrace",
        help="tracer used to re-execute stored inputs (default: settrace)",
    )
    corpus_distill.add_argument(
        "--subject-module", metavar="MODULE", default=None,
        help="import MODULE first so plugin subjects in the store resolve "
        "for the re-executions",
    )

    trace = sub.add_parser(
        "trace", help="query a campaign's NDJSON trace file"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_lineage = trace_sub.add_parser(
        "lineage",
        help="print the derivation chain of an emitted input "
        "(or every emitted input)",
    )
    trace_lineage.add_argument("trace_path", metavar="TRACE")
    trace_lineage.add_argument(
        "input", nargs="?", default=None, metavar="INPUT",
        help="the emitted input to explain; omit for all emitted inputs",
    )
    trace_fmt = trace_lineage.add_mutually_exclusive_group()
    trace_fmt.add_argument(
        "--dot", action="store_true",
        help="emit the chains as a Graphviz DOT graph",
    )
    trace_fmt.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the chains as a JSON document",
    )

    trace_chrome = trace_sub.add_parser(
        "chrome",
        help="export span/marker events as chrome://tracing JSON",
    )
    trace_chrome.add_argument("trace_path", metavar="TRACE")
    trace_chrome.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the JSON there instead of stdout",
    )

    trace_validate = trace_sub.add_parser(
        "validate",
        help="check every event against the trace schema; print counts",
    )
    trace_validate.add_argument("trace_path", metavar="TRACE")
    trace_validate.add_argument(
        "--strict", action="store_true",
        help="also fail on a torn final line (interrupted append)",
    )

    serve = sub.add_parser(
        "serve", help="run the campaign service (job queue + HTTP control plane)"
    )
    serve.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="journal and per-job checkpoints live here; restarting on the "
        "same DIR resumes every unfinished job deterministically",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=_nonnegative_int, default=8321, metavar="PORT",
        help="control-plane port (0 picks a free one; default: 8321)",
    )
    serve.add_argument(
        "--workers", type=_positive_int, default=2, metavar="N",
        help="worker processes for campaign slices (default: 2)",
    )
    serve.add_argument(
        "--slice-executions", type=_positive_int, default=250, metavar="N",
        help="preempt a job after N executions per slice (default: 250)",
    )
    serve.add_argument(
        "--slice-timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="wall-clock limit per slice (default: none)",
    )
    serve.add_argument(
        "--until-idle", action="store_true",
        help="exit once every journalled job is terminal (for scripts/tests)",
    )
    serve.add_argument(
        "--adaptive", action="store_true",
        help="weight each job's fair share by its coverage-gain posterior "
        "and park plateaued jobs, probing them periodically "
        "(DESIGN.md §10)",
    )
    serve.add_argument(
        "--gain-threshold", type=_positive_float, default=None,
        metavar="RATE",
        help="with --adaptive: park a job once its posterior "
        "discoveries-per-execution falls below RATE (default: 0.005)",
    )
    serve.add_argument(
        "--probe-every", type=_positive_int, default=None, metavar="N",
        help="with --adaptive: grant a parked job one probe slice after "
        "the fleet advances N executions (default: 2000)",
    )
    serve.add_argument(
        "--gain-decay", type=_positive_float, default=None, metavar="FACTOR",
        help="with --adaptive: per-execution evidence decay in (0, 1] "
        "(default: 0.999)",
    )

    submit = sub.add_parser("submit", help="submit a campaign job to a service")
    # Open string like `fuzz`: plugin subjects are validated server-side
    # (the spec's subject_module is imported before validation).
    submit.add_argument(
        "subject", metavar="SUBJECT",
        help="a built-in subject "
        f"({', '.join(SUBJECT_NAMES + ('expr',))}) or a plugin subject "
        "(see --subject-module)",
    )
    submit.add_argument(
        "--subject-module", metavar="MODULE", default=None,
        help="module the service must import before resolving SUBJECT "
        "(must be importable inside the service's workers)",
    )
    submit.add_argument("--url", default="http://127.0.0.1:8321",
                        help="service base URL (default: %(default)s)")
    submit.add_argument("--tool", choices=TOOLS, default="pfuzzer")
    submit.add_argument("--budget", type=_positive_int, default=2_000)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--priority", type=_positive_int, default=1,
        help="fair-share weight; higher gets proportionally more slices",
    )
    submit.add_argument(
        "--coverage-backend", choices=COVERAGE_BACKENDS, default="settrace"
    )
    submit.add_argument(
        "--checkpoint-every", type=_positive_int, default=None, metavar="N"
    )
    submit.add_argument(
        "--trace", action="store_true",
        help="record an NDJSON campaign trace in the job's state directory "
        "(pFuzzer jobs only)",
    )
    submit.add_argument(
        "--shards", type=_positive_int, default=1, metavar="N",
        help="submit a gang-scheduled group of N shard-aware jobs sharing "
        "one corpus store (pFuzzer only); shard i uses seed SEED+i",
    )
    submit.add_argument(
        "--sync-every", type=_positive_int, default=None, metavar="N",
        help="corpus-sync cadence in executions for sharded jobs "
        "(default: the service's slice length)",
    )
    submit.add_argument(
        "--executor", choices=EXECUTOR_MODES, default="inline",
        help="execution engine for the job's slices (pFuzzer only)",
    )
    submit.add_argument(
        "--batch-size", type=_positive_int, default=1, metavar="N",
        help="with --executor pooled: speculative candidates per round-trip",
    )
    submit.add_argument(
        "--cull-every", type=_positive_int, default=None, metavar="N",
        help="queue-hygiene cadence in executions (pFuzzer only; never "
        "changes the job's result fingerprint)",
    )
    submit.add_argument(
        "--hybrid", action="store_true",
        help="run the job as a hybrid mine/generate campaign "
        "(pFuzzer only; see 'repro fuzz --hybrid')",
    )
    submit.add_argument(
        "--mine-after", type=_positive_int, default=None, metavar="N",
        help="with --hybrid: gain-evidence/inter-phase floor",
    )
    submit.add_argument(
        "--gen-batch", type=_positive_int, default=None, metavar="N",
        help="with --hybrid: generated candidates per flood",
    )
    submit.add_argument(
        "--gen-depth", type=_positive_int, default=None, metavar="N",
        help="with --hybrid: compiled-generator flood depth budget",
    )
    submit.add_argument(
        "--hunt-crashes", action="store_true",
        help="run the job in crash-hunting mode (pFuzzer only; see "
        "'repro fuzz --hunt-crashes')",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state",
    )
    submit.add_argument(
        "--wait-timeout", type=_positive_float, default=300.0, metavar="SECONDS"
    )

    status = sub.add_parser(
        "status", help="show service jobs (all, or one job's full record)"
    )
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument("--url", default="http://127.0.0.1:8321")

    cancel = sub.add_parser("cancel", help="cancel a service job")
    cancel.add_argument("job_id")
    cancel.add_argument("--url", default="http://127.0.0.1:8321")
    return parser


def _cmd_fuzz_sharded(args: argparse.Namespace) -> int:
    """The --shards N>1 path: lockstep sharded group (DESIGN.md §8)."""
    import tempfile

    from repro.eval.shards import ShardPlan, run_sharded

    if args.resume and args.checkpoint_dir is None:
        print("# --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    root = args.checkpoint_dir or tempfile.mkdtemp(prefix="repro-shards-")
    plan = ShardPlan(
        subject=args.subject,
        budget=args.budget,
        shards=args.shards,
        base_seed=args.seed,
        slice_executions=args.slice_executions,
        sync_every=args.sync_every,
        checkpoint_every=args.checkpoint_every or 100,
        coverage_backend=args.coverage_backend,
    )
    group = run_sharded(plan, root)
    for shard in group.shards:
        print(
            f"# shard {shard.shard_id}: seed {shard.seed}, "
            f"{shard.executions} executions -> "
            f"{len(shard.valid_inputs)} valid inputs"
            + (f", {shard.resumes} resumes" if shard.resumes else ""),
            file=sys.stderr,
        )
    print(
        f"# {group.rounds} rounds, store {group.store_path}, "
        f"group fingerprint {group.group_fingerprint[:12]}",
        file=sys.stderr,
    )
    if args.corpus is not None and args.corpus != group.store_path:
        from repro.eval.corpus_store import CorpusStore

        CorpusStore(args.corpus).add_records(
            list(CorpusStore(group.store_path).records())
        )
    seen = set()
    for shard in group.shards:
        for text in shard.valid_inputs:
            if text not in seen:
                seen.add(text)
                print(repr(text))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    if args.subject_module is not None:
        load_subject_module(args.subject_module)
    if not is_known_subject(args.subject):
        print(
            f"# unknown subject {args.subject!r}; available subjects: "
            f"{', '.join(available_subjects())}",
            file=sys.stderr,
        )
        return 2
    if args.shards > 1:
        return _cmd_fuzz_sharded(args)
    subject = load_subject(args.subject)
    durability = {}
    if args.checkpoint_dir is not None:
        durability["checkpoint_dir"] = args.checkpoint_dir
        durability["resume"] = args.resume
        if args.checkpoint_every is not None:
            durability["checkpoint_every"] = args.checkpoint_every
    elif args.resume:
        print("# --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    config = FuzzerConfig(
        seed=args.seed,
        max_executions=args.budget,
        coverage_backend=args.coverage_backend,
        trace_path=args.trace,
        executor=args.executor,
        batch_size=args.batch_size,
        cull_every=args.cull_every,
        hybrid=args.hybrid,
        mine_after=args.mine_after,
        gen_batch=args.gen_batch,
        gen_depth=args.gen_depth,
        hunt_crashes=args.hunt_crashes,
        **durability,
    )
    result = PFuzzer(subject, config).run()
    print(
        f"# {result.executions} executions, {result.rejected} rejected, "
        f"{result.hangs} hangs, {result.wall_time:.1f}s"
        + (f", {result.resumes} resumes" if result.resumes else "")
        + (f", {result.crashes} crashes" if result.crashes else ""),
        file=sys.stderr,
    )
    if args.corpus is not None:
        from repro.eval.corpus_store import CorpusRecord, CorpusStore

        records = [
            CorpusRecord(
                subject=args.subject,
                tool="pfuzzer",
                seed=args.seed,
                input=text,
                path_signature=signature,
            )
            for text, signature in zip(
                result.valid_inputs, result.valid_signatures
            )
        ]
        records.extend(
            CorpusRecord(
                subject=args.subject,
                tool="pfuzzer",
                seed=args.seed,
                input=text,
                path_signature=signature,
                kind="crash",
                crash_signature=tuple(crash_signature),
            )
            for text, signature, crash_signature in zip(
                result.crash_inputs,
                result.crash_path_signatures,
                result.crash_signatures,
            )
        )
        CorpusStore(args.corpus).add_records(records)
    outputs = result.all_valid if args.all_valid else result.valid_inputs
    for text in outputs:
        print(repr(text))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    corpora = {}
    failed = 0
    if (
        args.jobs > 1
        or args.metrics
        or args.timeout
        or args.checkpoint_dir
        or args.corpus
        or args.trace_dir
    ):
        from repro.eval.parallel import RunSpec, run_grid

        specs = [
            RunSpec(tool, args.subject, args.budget, args.seed)
            for tool in args.tools
        ]
        records = run_grid(
            specs,
            jobs=args.jobs,
            timeout=args.timeout,
            metrics_path=args.metrics,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_retries=args.resume_retries,
            corpus_path=args.corpus,
            trace_dir=args.trace_dir,
        )
        for record in records:
            tool = record.spec.tool
            if record.output is None:
                failed += 1
                corpora[(args.subject, tool)] = []
                print(
                    f"# {tool}: {record.status.value} ({record.error})",
                    file=sys.stderr,
                )
                continue
            output = record.output
            corpora[(args.subject, tool)] = output.valid_inputs
            print(
                f"# {tool}: {output.executions} executions -> "
                f"{len(output.valid_inputs)} valid inputs ({output.wall_time:.1f}s)",
                file=sys.stderr,
            )
    else:
        for tool in args.tools:
            output = run_campaign(tool, args.subject, args.budget, seed=args.seed)
            corpora[(args.subject, tool)] = output.valid_inputs
            print(
                f"# {tool}: {output.executions} executions -> "
                f"{len(output.valid_inputs)} valid inputs ({output.wall_time:.1f}s)",
                file=sys.stderr,
            )
    coverages = figure3(corpora, [args.subject], args.tools)
    print(render_figure3(coverages, [args.subject], args.tools))
    grid = {
        key: coverage_of_inputs(args.subject, inputs)
        for key, inputs in corpora.items()
    }
    print()
    print(render_figure2(grid, [args.subject], args.tools))
    return 1 if failed else 0


def _cmd_tokens(args: argparse.Namespace) -> int:
    print(render_token_table(args.subject, max_examples=30))
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.miner.generate import GrammarFuzzer
    from repro.miner.mine import mine_grammar

    subject = load_subject(args.subject)
    config = FuzzerConfig(
        seed=args.seed,
        max_executions=args.budget,
        coverage_backend=args.coverage_backend,
    )
    result = PFuzzer(subject, config).run()
    # Ties broken lexicographically, not by set order: the mined grammar
    # must be a pure function of the campaign, not of PYTHONHASHSEED.
    corpus = sorted(set(result.all_valid), key=lambda t: (len(t), t))[-40:]
    print(f"# mined from {len(corpus)} valid inputs", file=sys.stderr)
    grammar = mine_grammar(subject, corpus)
    print(grammar)
    if args.generate:
        generator = GrammarFuzzer(grammar, seed=args.seed)
        print()
        for text in generator.generate_many(args.generate):
            marker = "ok " if subject.accepts(text) else "BAD"
            print(f"# {marker} {text!r}")
    return 0


def _cmd_subjects(args: argparse.Namespace) -> int:
    print(render_table1())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.experiments import render_markdown, run_all

    budgets = None
    if args.budget is not None:
        budgets = {subject: args.budget for subject in args.subjects}
    report = run_all(
        budgets=budgets,
        tools=args.tools,
        subjects=args.subjects,
        seeds=args.seeds,
        measure_code_coverage=not args.no_code_coverage,
        jobs=args.jobs,
        timeout=args.timeout,
        metrics_path=args.metrics,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume_retries=args.resume_retries,
        corpus_path=args.corpus,
        trace_dir=args.trace_dir,
    )
    print(render_markdown(report))
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.eval.corpus_store import CorpusStore

    store = CorpusStore(args.path)

    if args.corpus_command == "list":
        kind = "crash" if args.crashes else None
        for record in store.records(subject=args.subject, kind=kind):
            signature = (
                f"{record.path_signature:#x}"
                if record.path_signature is not None
                else "-"
            )
            line = (
                f"{record.subject}\t{record.tool}\t{record.seed}\t"
                f"{signature}\t{record.input!r}"
            )
            if record.kind != "valid":
                site = (
                    ":".join(str(part) for part in record.crash_signature)
                    if record.crash_signature
                    else "-"
                )
                line += f"\t{record.kind}\t{site}"
            print(line)
        return 0

    if args.corpus_command == "compact":
        kept, dropped = store.compact(
            collapse_signatures=args.collapse_signatures
        )
        print(f"# compacted: kept {kept}, dropped {dropped}", file=sys.stderr)
        _print_corpus_stats(store, subject=None)
        return 0

    if args.corpus_command == "distill":
        from repro.eval.distill import distill_store

        if args.subject_module is not None:
            load_subject_module(args.subject_module)
        try:
            results = distill_store(
                store,
                subject=args.subject,
                coverage_backend=args.coverage_backend,
            )
        except KeyError as error:
            print(f"# {error.args[0]}", file=sys.stderr)
            return 2
        for result in results:
            print(
                f"# {result.subject}: kept {result.kept}, "
                f"dropped {result.dropped}, {result.arcs} arcs preserved",
                file=sys.stderr,
            )
        if not results:
            print("# nothing to distill", file=sys.stderr)
        _print_corpus_stats(store, subject=args.subject)
        return 0

    # stats
    _print_corpus_stats(store, subject=args.subject)
    return 0


def _print_corpus_stats(store, subject: Optional[str]) -> None:
    """The ``repro corpus stats`` table: per-subject record / distinct
    input / distinct path-signature counts."""
    stats = store.stats()
    if subject is not None:
        stats = {name: row for name, row in stats.items() if name == subject}
    total = {"records": 0, "inputs": 0, "signatures": 0, "crashes": 0}
    for name in sorted(stats):
        row = stats[name]
        line = (
            f"{name}\trecords={row['records']}\tinputs={row['inputs']}\t"
            f"signatures={row['signatures']}"
        )
        if row.get("crashes"):
            line += f"\tcrashes={row['crashes']}"
        print(line)
        for key in total:
            total[key] += row.get(key, 0)
    print(f"records:              {total['records']}")
    print(f"distinct inputs:      {total['inputs']}")
    print(f"distinct signatures:  {total['signatures']}")
    if total["crashes"]:
        print(f"distinct crash sites: {total['crashes']}")
    print(
        f"subjects:             "
        f"{', '.join(sorted(stats)) if stats else '-'}"
    )


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.trace import read_trace

    try:
        events = read_trace(
            args.trace_path, strict=getattr(args, "strict", False)
        )
    except OSError as exc:
        print(f"# cannot read trace: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        print(f"# invalid trace: {exc}", file=sys.stderr)
        return 1

    if args.trace_command == "validate":
        counts: dict = {}
        for event in events:
            counts[event["type"]] = counts.get(event["type"], 0) + 1
        for kind in sorted(counts):
            print(f"{kind}\t{counts[kind]}")
        print(f"# {len(events)} events, schema ok", file=sys.stderr)
        return 0

    if args.trace_command == "chrome":
        from repro.obs.export import chrome_trace

        document = json.dumps(chrome_trace(events), ensure_ascii=True)
        if args.output is not None:
            with open(args.output, "w", encoding="ascii") as handle:
                handle.write(document + "\n")
            print(f"# wrote {args.output}", file=sys.stderr)
        else:
            print(document)
        return 0

    # lineage
    from repro.obs.export import lineage_dot, lineage_json
    from repro.obs.lineage import LineageError, LineageLog

    log = LineageLog.from_trace_events(events)
    emitted = [
        event for event in events if event.get("type") == "input_emitted"
    ]
    if args.input is not None:
        node_ids = [
            event["lineage"] for event in emitted if event["text"] == args.input
        ]
        if not node_ids:
            # Fall back to any lineage node with that text (inputs that
            # executed but were never emitted still have a chain).
            node_ids = log.find_by_text(args.input)
        if not node_ids:
            print(f"# no lineage for input {args.input!r}", file=sys.stderr)
            return 1
        node_ids = node_ids[:1]
    else:
        node_ids = [event["lineage"] for event in emitted]
        if not node_ids:
            print("# trace contains no emitted inputs", file=sys.stderr)
            return 1
    try:
        if args.dot:
            sys.stdout.write(lineage_dot(log, node_ids))
            return 0
        if args.as_json:
            sys.stdout.write(lineage_json(log, node_ids))
            return 0
        for node_id in node_ids:
            chain = log.chain(node_id)
            replayed = log.replay(node_id)
            print(f"# input {chain[-1].text!r} (node {node_id})")
            for node in chain:
                if node.op == "seed":
                    detail = f"seed {node.replacement!r}"
                elif node.op == "append":
                    detail = f"append {node.replacement!r}"
                else:
                    detail = (
                        f"substitute @{node.at_index} {node.replacement!r}"
                        + (f" ({node.cmp_kind})" if node.cmp_kind else "")
                    )
                print(f"  #{node.node_id} {detail} -> {node.text!r}")
            status = "ok" if replayed == chain[-1].text else "MISMATCH"
            print(f"  replay: {status}")
    except LineageError as exc:
        print(f"# broken lineage: {exc}", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.service.gain import GainConfig
    from repro.service.scheduler import SchedulerConfig
    from repro.service.server import serve

    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _request_stop)
    signal.signal(signal.SIGINT, _request_stop)
    serve(
        args.state_dir,
        host=args.host,
        port=args.port,
        scheduler_config=SchedulerConfig(
            workers=args.workers,
            slice_executions=args.slice_executions,
            slice_timeout=args.slice_timeout,
            adaptive=args.adaptive,
            gain=GainConfig(
                **{
                    name: value
                    for name, value in (
                        ("pause_threshold", args.gain_threshold),
                        ("probe_every", args.probe_every),
                        ("decay", args.gain_decay),
                    )
                    if value is not None
                }
            ),
        ),
        stop=stop,
        until_idle=args.until_idle,
        on_bound=lambda host, port: print(
            f"# serving on http://{host}:{port} (state: {args.state_dir})",
            file=sys.stderr,
            flush=True,
        ),
    )
    return 0


def _print_job(record: dict) -> None:
    import json

    print(json.dumps(record, indent=2, sort_keys=True))


def _service_call(url: str, operation) -> int:
    """Run one client call; map service/connection errors to exit 1."""
    import urllib.error

    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(url)
    try:
        return operation(client)
    except ServiceError as exc:
        print(f"# {exc}", file=sys.stderr)
        return 1
    except (urllib.error.URLError, ConnectionError, OSError) as exc:
        print(f"# cannot reach service at {url}: {exc}", file=sys.stderr)
        return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    spec = {
        "subject": args.subject,
        "tool": args.tool,
        "budget": args.budget,
        "seed": args.seed,
        "priority": args.priority,
        "coverage_backend": args.coverage_backend,
    }
    if args.checkpoint_every is not None:
        spec["checkpoint_every"] = args.checkpoint_every
    if args.trace:
        spec["trace"] = True
    if args.shards > 1:
        spec["shards"] = args.shards
    if args.sync_every is not None:
        spec["sync_every"] = args.sync_every
    if args.executor != "inline":
        spec["executor"] = args.executor
        spec["batch_size"] = args.batch_size
    if args.cull_every is not None:
        spec["cull_every"] = args.cull_every
    if args.hybrid:
        spec["hybrid"] = True
        if args.mine_after is not None:
            spec["mine_after"] = args.mine_after
        if args.gen_batch is not None:
            spec["gen_batch"] = args.gen_batch
        if args.gen_depth is not None:
            spec["gen_depth"] = args.gen_depth
    if args.hunt_crashes:
        spec["hunt_crashes"] = True
    if args.subject_module is not None:
        spec["subject_module"] = args.subject_module

    def run(client) -> int:
        response = client.submit(spec)
        # Sharded submissions expand into a gang-scheduled group: the
        # service answers {"shard_group": ..., "jobs": [...]}.
        records = response["jobs"] if "jobs" in response else [response]
        if args.wait:
            records = [
                client.wait(record["job_id"], timeout=args.wait_timeout)
                for record in records
            ]
        if "jobs" in response:
            _print_job({"shard_group": response["shard_group"],
                        "jobs": records})
        else:
            _print_job(records[0])
        return (
            0
            if all(
                record["state"] in ("queued", "running", "done")
                for record in records
            )
            else 1
        )

    return _service_call(args.url, run)


def _cmd_status(args: argparse.Namespace) -> int:
    def run(client) -> int:
        if args.job_id is not None:
            _print_job(client.job(args.job_id))
            return 0
        for record in client.jobs():
            fingerprint = record.get("result_fingerprint") or "-"
            print(
                f"{record['job_id']}\t{record['state']}\t"
                f"{record['spec']['tool']}:{record['spec']['subject']}\t"
                f"{record['executions']}/{record['spec']['budget']}\t"
                f"slices={record['slices']}\t{fingerprint[:12]}"
            )
        return 0

    return _service_call(args.url, run)


def _cmd_cancel(args: argparse.Namespace) -> int:
    def run(client) -> int:
        _print_job(client.cancel(args.job_id))
        return 0

    return _service_call(args.url, run)


_COMMANDS = {
    "fuzz": _cmd_fuzz,
    "compare": _cmd_compare,
    "tokens": _cmd_tokens,
    "mine": _cmd_mine,
    "subjects": _cmd_subjects,
    "report": _cmd_report,
    "corpus": _cmd_corpus,
    "trace": _cmd_trace,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "cancel": _cmd_cancel,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # `repro corpus list ... | head` closes stdout early; die the
        # conventional way (128 + SIGPIPE) without a traceback.  stdout
        # is re-pointed at devnull so the interpreter's exit-time flush
        # does not raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
