"""Command-line interface.

Subcommands mirror the workflows in the paper's evaluation:

* ``fuzz``     — run pFuzzer on a subject and print the valid inputs;
* ``compare``  — run pFuzzer and the baselines with equal budgets and print
  the Figure 2 / Figure 3 style reports for one subject;
* ``tokens``   — print a subject's token inventory (Tables 2–4);
* ``mine``     — fuzz, mine a grammar from the valid inputs, and print it;
* ``subjects`` — list the available subjects (Table 1).

Examples::

    python -m repro fuzz json --budget 2000 --seed 3
    python -m repro compare tinyc --budget 4000
    python -m repro compare json --jobs 4 --metrics metrics.jsonl
    python -m repro tokens mjs
    python -m repro mine expr

Exit codes: 0 on success, 1 when a parallel campaign cell failed or timed
out (the rest of the grid still completes and prints), 2 on usage errors
(argparse).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.campaign import TOOLS, run_campaign
from repro.eval.code_cov import coverage_of_inputs
from repro.eval.report import (
    render_figure2,
    render_figure3,
    render_table1,
    render_token_table,
)
from repro.eval.token_cov import figure3
from repro.runtime.harness import COVERAGE_BACKENDS
from repro.subjects.registry import SUBJECT_NAMES, load_subject


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the campaign grid (default: 1, sequential)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write one JSONL metrics record per campaign run to PATH",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock limit; timed-out runs are reported, not fatal",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parser-directed fuzzing (PLDI 2019) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run pFuzzer on a subject")
    fuzz.add_argument("subject", choices=SUBJECT_NAMES + ("expr",))
    fuzz.add_argument("--budget", type=int, default=2_000, help="execution budget")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--all-valid",
        action="store_true",
        help="print every accepted input, not only new-coverage ones",
    )
    fuzz.add_argument(
        "--coverage-backend",
        choices=COVERAGE_BACKENDS,
        default="settrace",
        help="coverage tracer: settrace (reference) or ast (compiled-in, faster)",
    )

    compare = sub.add_parser("compare", help="pFuzzer vs AFL vs KLEE on one subject")
    compare.add_argument("subject", choices=SUBJECT_NAMES)
    compare.add_argument("--budget", type=int, default=2_000)
    compare.add_argument("--seed", type=int, default=3)
    compare.add_argument(
        "--tools", nargs="+", choices=TOOLS, default=["afl", "klee", "pfuzzer"]
    )
    _add_parallel_options(compare)

    tokens = sub.add_parser("tokens", help="print a subject's token inventory")
    tokens.add_argument("subject", choices=SUBJECT_NAMES)

    mine = sub.add_parser("mine", help="fuzz, then mine a grammar (§7.4)")
    mine.add_argument("subject", choices=SUBJECT_NAMES + ("expr",))
    mine.add_argument("--budget", type=int, default=800)
    mine.add_argument("--seed", type=int, default=1)
    mine.add_argument("--generate", type=int, default=0, metavar="N",
                      help="also generate N inputs from the mined grammar")
    mine.add_argument(
        "--coverage-backend",
        choices=COVERAGE_BACKENDS,
        default="settrace",
        help="coverage tracer: settrace (reference) or ast (compiled-in, faster)",
    )

    sub.add_parser("subjects", help="list available subjects (Table 1)")

    report = sub.add_parser(
        "report", help="run the full evaluation and print a markdown report"
    )
    report.add_argument("--budget", type=int, default=None,
                        help="override every subject's execution budget")
    report.add_argument("--subjects", nargs="+", choices=SUBJECT_NAMES,
                        default=list(SUBJECT_NAMES))
    report.add_argument("--tools", nargs="+", choices=TOOLS,
                        default=["afl", "klee", "pfuzzer"])
    report.add_argument("--seeds", nargs="+", type=int, default=[0, 3, 8])
    report.add_argument("--no-code-coverage", action="store_true")
    _add_parallel_options(report)
    return parser


def _cmd_fuzz(args: argparse.Namespace) -> int:
    subject = load_subject(args.subject)
    config = FuzzerConfig(
        seed=args.seed,
        max_executions=args.budget,
        coverage_backend=args.coverage_backend,
    )
    result = PFuzzer(subject, config).run()
    print(
        f"# {result.executions} executions, {result.rejected} rejected, "
        f"{result.hangs} hangs, {result.wall_time:.1f}s",
        file=sys.stderr,
    )
    outputs = result.all_valid if args.all_valid else result.valid_inputs
    for text in outputs:
        print(repr(text))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    corpora = {}
    failed = 0
    if args.jobs > 1 or args.metrics or args.timeout:
        from repro.eval.parallel import RunSpec, run_grid

        specs = [
            RunSpec(tool, args.subject, args.budget, args.seed)
            for tool in args.tools
        ]
        records = run_grid(
            specs, jobs=args.jobs, timeout=args.timeout, metrics_path=args.metrics
        )
        for record in records:
            tool = record.spec.tool
            if record.output is None:
                failed += 1
                corpora[(args.subject, tool)] = []
                print(
                    f"# {tool}: {record.status.value} ({record.error})",
                    file=sys.stderr,
                )
                continue
            output = record.output
            corpora[(args.subject, tool)] = output.valid_inputs
            print(
                f"# {tool}: {output.executions} executions -> "
                f"{len(output.valid_inputs)} valid inputs ({output.wall_time:.1f}s)",
                file=sys.stderr,
            )
    else:
        for tool in args.tools:
            output = run_campaign(tool, args.subject, args.budget, seed=args.seed)
            corpora[(args.subject, tool)] = output.valid_inputs
            print(
                f"# {tool}: {output.executions} executions -> "
                f"{len(output.valid_inputs)} valid inputs ({output.wall_time:.1f}s)",
                file=sys.stderr,
            )
    coverages = figure3(corpora, [args.subject], args.tools)
    print(render_figure3(coverages, [args.subject], args.tools))
    grid = {
        key: coverage_of_inputs(args.subject, inputs)
        for key, inputs in corpora.items()
    }
    print()
    print(render_figure2(grid, [args.subject], args.tools))
    return 1 if failed else 0


def _cmd_tokens(args: argparse.Namespace) -> int:
    print(render_token_table(args.subject, max_examples=30))
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.miner.generate import GrammarFuzzer
    from repro.miner.mine import mine_grammar

    subject = load_subject(args.subject)
    config = FuzzerConfig(
        seed=args.seed,
        max_executions=args.budget,
        coverage_backend=args.coverage_backend,
    )
    result = PFuzzer(subject, config).run()
    corpus = sorted(set(result.all_valid), key=len)[-40:]
    print(f"# mined from {len(corpus)} valid inputs", file=sys.stderr)
    grammar = mine_grammar(subject, corpus)
    print(grammar)
    if args.generate:
        generator = GrammarFuzzer(grammar, seed=args.seed)
        print()
        for text in generator.generate_many(args.generate):
            marker = "ok " if subject.accepts(text) else "BAD"
            print(f"# {marker} {text!r}")
    return 0


def _cmd_subjects(args: argparse.Namespace) -> int:
    print(render_table1())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.experiments import render_markdown, run_all

    budgets = None
    if args.budget is not None:
        budgets = {subject: args.budget for subject in args.subjects}
    report = run_all(
        budgets=budgets,
        tools=args.tools,
        subjects=args.subjects,
        seeds=args.seeds,
        measure_code_coverage=not args.no_code_coverage,
        jobs=args.jobs,
        timeout=args.timeout,
        metrics_path=args.metrics,
    )
    print(render_markdown(report))
    return 0


_COMMANDS = {
    "fuzz": _cmd_fuzz,
    "compare": _cmd_compare,
    "tokens": _cmd_tokens,
    "mine": _cmd_mine,
    "subjects": _cmd_subjects,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
