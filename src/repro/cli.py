"""Command-line interface.

Subcommands mirror the workflows in the paper's evaluation:

* ``fuzz``     — run pFuzzer on a subject and print the valid inputs;
* ``compare``  — run pFuzzer and the baselines with equal budgets and print
  the Figure 2 / Figure 3 style reports for one subject;
* ``tokens``   — print a subject's token inventory (Tables 2–4);
* ``mine``     — fuzz, mine a grammar from the valid inputs, and print it;
* ``subjects`` — list the available subjects (Table 1).

Examples::

    python -m repro fuzz json --budget 2000 --seed 3
    python -m repro fuzz json --checkpoint-dir ck/ --resume --corpus corpus.jsonl
    python -m repro compare tinyc --budget 4000
    python -m repro compare json --jobs 4 --metrics metrics.jsonl
    python -m repro compare json --jobs 4 --checkpoint-dir ck/ --corpus corpus.jsonl
    python -m repro tokens mjs
    python -m repro mine expr

Exit codes: 0 on success, 1 when a parallel campaign cell failed or timed
out (the rest of the grid still completes and prints), 2 on usage errors
(argparse).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.config import FuzzerConfig
from repro.core.fuzzer import PFuzzer
from repro.eval.campaign import TOOLS, run_campaign
from repro.eval.code_cov import coverage_of_inputs
from repro.eval.report import (
    render_figure2,
    render_figure3,
    render_table1,
    render_token_table,
)
from repro.eval.token_cov import figure3
from repro.runtime.harness import COVERAGE_BACKENDS
from repro.subjects.registry import SUBJECT_NAMES, load_subject


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {text!r}")
    return value


def _add_parallel_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the campaign grid (default: 1, sequential)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="write one JSONL metrics record per campaign run to PATH",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-run wall-clock limit; timed-out runs are reported, not fatal",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="durable snapshots: every grid cell checkpoints into its own "
        "subdirectory of DIR and crashed/killed/timed-out cells resume "
        "from their last snapshot",
    )
    parser.add_argument(
        "--checkpoint-every", type=_positive_int, default=None, metavar="N",
        help="snapshot cadence in executions (default: the fuzzer's own)",
    )
    parser.add_argument(
        "--resume-retries", type=int, default=2, metavar="N",
        help="with --checkpoint-dir: extra resume attempts for timed-out "
        "cells (default: 2)",
    )
    parser.add_argument(
        "--corpus", metavar="PATH", default=None,
        help="append every run's valid inputs (with path signatures) to "
        "this persistent corpus store",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parser-directed fuzzing (PLDI 2019) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run pFuzzer on a subject")
    fuzz.add_argument("subject", choices=SUBJECT_NAMES + ("expr",))
    fuzz.add_argument("--budget", type=int, default=2_000, help="execution budget")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument(
        "--all-valid",
        action="store_true",
        help="print every accepted input, not only new-coverage ones",
    )
    fuzz.add_argument(
        "--coverage-backend",
        choices=COVERAGE_BACKENDS,
        default="settrace",
        help="coverage tracer: settrace (reference) or ast (compiled-in, faster)",
    )
    fuzz.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="write durable campaign snapshots to DIR (see --resume)",
    )
    fuzz.add_argument(
        "--checkpoint-every", type=_positive_int, default=None, metavar="N",
        help="snapshot every N executions (default: 500)",
    )
    fuzz.add_argument(
        "--resume", action="store_true",
        help="restore the newest valid snapshot from --checkpoint-dir "
        "before fuzzing; the resumed campaign is byte-identical to an "
        "uninterrupted one",
    )
    fuzz.add_argument(
        "--corpus", metavar="PATH", default=None,
        help="append the run's valid inputs (with path signatures) to "
        "this persistent corpus store",
    )

    compare = sub.add_parser("compare", help="pFuzzer vs AFL vs KLEE on one subject")
    compare.add_argument("subject", choices=SUBJECT_NAMES)
    compare.add_argument("--budget", type=int, default=2_000)
    compare.add_argument("--seed", type=int, default=3)
    compare.add_argument(
        "--tools", nargs="+", choices=TOOLS, default=["afl", "klee", "pfuzzer"]
    )
    _add_parallel_options(compare)

    tokens = sub.add_parser("tokens", help="print a subject's token inventory")
    tokens.add_argument("subject", choices=SUBJECT_NAMES)

    mine = sub.add_parser("mine", help="fuzz, then mine a grammar (§7.4)")
    mine.add_argument("subject", choices=SUBJECT_NAMES + ("expr",))
    mine.add_argument("--budget", type=int, default=800)
    mine.add_argument("--seed", type=int, default=1)
    mine.add_argument("--generate", type=int, default=0, metavar="N",
                      help="also generate N inputs from the mined grammar")
    mine.add_argument(
        "--coverage-backend",
        choices=COVERAGE_BACKENDS,
        default="settrace",
        help="coverage tracer: settrace (reference) or ast (compiled-in, faster)",
    )

    sub.add_parser("subjects", help="list available subjects (Table 1)")

    report = sub.add_parser(
        "report", help="run the full evaluation and print a markdown report"
    )
    report.add_argument("--budget", type=int, default=None,
                        help="override every subject's execution budget")
    report.add_argument("--subjects", nargs="+", choices=SUBJECT_NAMES,
                        default=list(SUBJECT_NAMES))
    report.add_argument("--tools", nargs="+", choices=TOOLS,
                        default=["afl", "klee", "pfuzzer"])
    report.add_argument("--seeds", nargs="+", type=int, default=[0, 3, 8])
    report.add_argument("--no-code-coverage", action="store_true")
    _add_parallel_options(report)
    return parser


def _cmd_fuzz(args: argparse.Namespace) -> int:
    subject = load_subject(args.subject)
    durability = {}
    if args.checkpoint_dir is not None:
        durability["checkpoint_dir"] = args.checkpoint_dir
        durability["resume"] = args.resume
        if args.checkpoint_every is not None:
            durability["checkpoint_every"] = args.checkpoint_every
    elif args.resume:
        print("# --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    config = FuzzerConfig(
        seed=args.seed,
        max_executions=args.budget,
        coverage_backend=args.coverage_backend,
        **durability,
    )
    result = PFuzzer(subject, config).run()
    print(
        f"# {result.executions} executions, {result.rejected} rejected, "
        f"{result.hangs} hangs, {result.wall_time:.1f}s"
        + (f", {result.resumes} resumes" if result.resumes else ""),
        file=sys.stderr,
    )
    if args.corpus is not None:
        from repro.eval.corpus_store import CorpusRecord, CorpusStore

        CorpusStore(args.corpus).add_records(
            [
                CorpusRecord(
                    subject=args.subject,
                    tool="pfuzzer",
                    seed=args.seed,
                    input=text,
                    path_signature=signature,
                )
                for text, signature in zip(
                    result.valid_inputs, result.valid_signatures
                )
            ]
        )
    outputs = result.all_valid if args.all_valid else result.valid_inputs
    for text in outputs:
        print(repr(text))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    corpora = {}
    failed = 0
    if (
        args.jobs > 1
        or args.metrics
        or args.timeout
        or args.checkpoint_dir
        or args.corpus
    ):
        from repro.eval.parallel import RunSpec, run_grid

        specs = [
            RunSpec(tool, args.subject, args.budget, args.seed)
            for tool in args.tools
        ]
        records = run_grid(
            specs,
            jobs=args.jobs,
            timeout=args.timeout,
            metrics_path=args.metrics,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume_retries=args.resume_retries,
            corpus_path=args.corpus,
        )
        for record in records:
            tool = record.spec.tool
            if record.output is None:
                failed += 1
                corpora[(args.subject, tool)] = []
                print(
                    f"# {tool}: {record.status.value} ({record.error})",
                    file=sys.stderr,
                )
                continue
            output = record.output
            corpora[(args.subject, tool)] = output.valid_inputs
            print(
                f"# {tool}: {output.executions} executions -> "
                f"{len(output.valid_inputs)} valid inputs ({output.wall_time:.1f}s)",
                file=sys.stderr,
            )
    else:
        for tool in args.tools:
            output = run_campaign(tool, args.subject, args.budget, seed=args.seed)
            corpora[(args.subject, tool)] = output.valid_inputs
            print(
                f"# {tool}: {output.executions} executions -> "
                f"{len(output.valid_inputs)} valid inputs ({output.wall_time:.1f}s)",
                file=sys.stderr,
            )
    coverages = figure3(corpora, [args.subject], args.tools)
    print(render_figure3(coverages, [args.subject], args.tools))
    grid = {
        key: coverage_of_inputs(args.subject, inputs)
        for key, inputs in corpora.items()
    }
    print()
    print(render_figure2(grid, [args.subject], args.tools))
    return 1 if failed else 0


def _cmd_tokens(args: argparse.Namespace) -> int:
    print(render_token_table(args.subject, max_examples=30))
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from repro.miner.generate import GrammarFuzzer
    from repro.miner.mine import mine_grammar

    subject = load_subject(args.subject)
    config = FuzzerConfig(
        seed=args.seed,
        max_executions=args.budget,
        coverage_backend=args.coverage_backend,
    )
    result = PFuzzer(subject, config).run()
    corpus = sorted(set(result.all_valid), key=len)[-40:]
    print(f"# mined from {len(corpus)} valid inputs", file=sys.stderr)
    grammar = mine_grammar(subject, corpus)
    print(grammar)
    if args.generate:
        generator = GrammarFuzzer(grammar, seed=args.seed)
        print()
        for text in generator.generate_many(args.generate):
            marker = "ok " if subject.accepts(text) else "BAD"
            print(f"# {marker} {text!r}")
    return 0


def _cmd_subjects(args: argparse.Namespace) -> int:
    print(render_table1())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.eval.experiments import render_markdown, run_all

    budgets = None
    if args.budget is not None:
        budgets = {subject: args.budget for subject in args.subjects}
    report = run_all(
        budgets=budgets,
        tools=args.tools,
        subjects=args.subjects,
        seeds=args.seeds,
        measure_code_coverage=not args.no_code_coverage,
        jobs=args.jobs,
        timeout=args.timeout,
        metrics_path=args.metrics,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume_retries=args.resume_retries,
        corpus_path=args.corpus,
    )
    print(render_markdown(report))
    return 0


_COMMANDS = {
    "fuzz": _cmd_fuzz,
    "compare": _cmd_compare,
    "tokens": _cmd_tokens,
    "mine": _cmd_mine,
    "subjects": _cmd_subjects,
    "report": _cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
