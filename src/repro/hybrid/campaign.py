"""The hybrid campaign engine: explore, learn, generate, repeat.

The paper's §7.4 observation — once pFuzzer has bootstrapped valid
inputs, grammar-based generation covers deeper structure faster than
parser-directed search — becomes a campaign *mode* here.  One
:class:`HybridEngine` rides inside a :class:`repro.core.fuzzer.PFuzzer`
(behind ``FuzzerConfig.hybrid``) and alternates three phases:

1. **Explore** — parser-directed search runs normally while the engine
   feeds a decayed coverage-gain posterior
   (:class:`repro.service.gain.GainEstimator`) with per-iteration
   execution/emission deltas.
2. **Learn** — once the posterior plateaus (and the inter-phase floor
   has passed), the miner induces a grammar from the longest accumulated
   valid inputs.  Token boundaries are labelled from the lineage log:
   multi-character comparison replacements on emitted inputs' derivation
   chains are the parser's own keywords (:func:`lineage_keywords`), and
   :func:`enrich_grammar` splits every other multi-character terminal
   into single characters so those keywords stay atomic choice points.
3. **Generate** — the grammar is compiled
   (:mod:`repro.hybrid.compile`) at a shallow depth budget and floods a
   batch of fresh sentences into the campaign as ``"gen"``-lineage
   roots.  The fuzzer resets ``vBr`` first, so parser-directed search
   re-measures progress against the flooded corpus and extends the
   generated structures instead of re-deriving them.

The flood depth is deliberately shallow (``gen_depth``): flood
candidates are corpus-scale re-seed roots, not coverage payloads — the
closing tables supply complete minimal tails for every open structure,
and structural depth accumulates across mining rounds as each phase
mines the previous phase's extended outputs.

Determinism contract: the engine is pure state driven by campaign
counters — no wall clock, and its only randomness is a dedicated
generation RNG seeded from the campaign seed and carried through
snapshots.  Identical (seed, config) campaigns run identical phase
schedules, which is what keeps hybrid campaigns inside the kill/resume
fingerprint-equivalence guarantees.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Container, Iterable, List, Optional, Sequence

from repro.hybrid.compile import CompiledGenerator, compile_grammar
from repro.miner.grammar import Grammar, TERM, Symbol
from repro.obs.lineage import LineageError, LineageLog
from repro.service.gain import GainConfig, GainEstimator

#: XOR'd into the campaign seed for the generation RNG so the flood
#: stream is decorrelated from the append/restart stream without
#: consuming draws from it.
_GEN_SEED_SALT = 0x9E3779B9


@dataclass(frozen=True)
class HybridConfig:
    """Knobs of the explore→learn→generate alternation.

    Attributes:
        mine_after: decayed-execution evidence the gain estimator needs
            before a plateau may trigger a mining phase, and the floor
            (in executions) between consecutive phases.
        gen_batch: maximum generated sentences injected per flood.
        mine_corpus: how many accumulated valid inputs feed the miner —
            the longest ones, ties broken lexicographically, so the
            slice is deterministic and biased toward structure.
        gen_depth: depth budget of the compiled generator during
            floods.  Shallow by design (see the module docstring): the
            closing tables complete every open structure minimally, and
            depth accumulates across phases.
        pause_threshold: plateau bar on the posterior discovery rate.
        decay: per-execution evidence decay of the gain posterior.
    """

    mine_after: int = 600
    gen_batch: int = 32
    mine_corpus: int = 40
    gen_depth: int = 3
    pause_threshold: float = 0.02
    decay: float = 0.995

    def validate(self) -> None:
        """Raises ``ValueError`` naming the first invalid knob."""
        if self.mine_after < 1:
            raise ValueError("mine_after must be positive")
        if self.gen_batch < 1:
            raise ValueError("gen_batch must be positive")
        if self.mine_corpus < 1:
            raise ValueError("mine_corpus must be positive")
        if self.gen_depth < 1:
            raise ValueError("gen_depth must be positive")
        if not 0.0 < self.pause_threshold < 1.0:
            raise ValueError("pause_threshold must be in (0, 1)")
        if not 0.0 < self.decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")

    @classmethod
    def from_fuzzer(cls, config) -> "HybridConfig":
        """The engine knobs a :class:`~repro.core.config.FuzzerConfig`
        exposes; the rest keep their defaults."""
        return cls(
            mine_after=config.mine_after,
            gen_batch=config.gen_batch,
            gen_depth=config.gen_depth,
        )

    def gain_config(self) -> GainConfig:
        """The plateau detector's posterior configuration.

        ``min_evidence`` keeps a fresh (or freshly reset) posterior from
        firing on its prior alone.  Decayed execution counts saturate at
        the decay horizon ``1 / (1 - decay)`` — an evidence floor above
        it would never be met — so the estimator's bar is capped at half
        the horizon; the full (undecayed) ``mine_after`` floor is
        enforced separately by :meth:`HybridEngine.plateaued`.
        """
        horizon = (
            1.0 / (1.0 - self.decay) if self.decay < 1.0 else float("inf")
        )
        return GainConfig(
            decay=self.decay,
            pause_threshold=self.pause_threshold,
            min_evidence=min(float(self.mine_after), horizon / 2.0),
        )


def lineage_keywords(log: LineageLog, node_ids: Iterable[int]) -> List[str]:
    """The parser's keywords, read off emitted inputs' derivation chains.

    Every ``"substitute"`` node records the comparison-supplied
    replacement that spliced it; multi-character replacements are
    exactly the tokens the parser compared whole strings against
    (``strcmp("true")``-style).  Collecting them over the chains of the
    emitted inputs labels token boundaries for :func:`enrich_grammar`
    without any grammar-specific knowledge.  Sorted for determinism;
    chains broken by pre-lineage snapshots are skipped, not fatal.
    """
    found = set()
    for node_id in node_ids:
        try:
            chain = log.chain(node_id)
        except LineageError:
            continue
        for node in chain:
            if node.op != "substitute":
                continue
            word = node.replacement.strip()
            if len(word) >= 2:
                found.add(word)
    return sorted(found)


def _split_terminal(text: str, keywords: Sequence[str]) -> List[Symbol]:
    """Split one terminal run into keyword-atomic single-char pieces.

    ``keywords`` must be ordered longest-first so overlapping keywords
    resolve to the longest match, deterministically.
    """
    pieces: List[Symbol] = []
    position = 0
    length = len(text)
    while position < length:
        for keyword in keywords:
            if text.startswith(keyword, position):
                pieces.append((TERM, keyword))
                position += len(keyword)
                break
        else:
            pieces.append((TERM, text[position]))
            position += 1
    return pieces


def enrich_grammar(grammar: Grammar, keywords: Iterable[str]) -> Grammar:
    """Re-tokenise a mined grammar around lineage-derived keywords.

    Multi-character terminals are split into single characters — except
    substrings matching a known keyword, which stay atomic.  The miner
    records terminals as whatever contiguous text a parser frame
    consumed, which can fuse a keyword with surrounding punctuation;
    splitting restores character-level choice points (the compiler's
    terminal merging re-fuses unconditional runs at build time) while
    keywords survive as indivisible tokens, so generation never emits a
    half keyword.
    """
    ordered = sorted(
        {keyword for keyword in keywords if len(keyword) >= 2},
        key=lambda keyword: (-len(keyword), keyword),
    )
    out = Grammar(grammar.start)
    for name, expansions in grammar.rules.items():
        for expansion in expansions:
            symbols: List[Symbol] = []
            for kind, value in expansion:
                if kind == TERM and len(value) > 1:
                    symbols.extend(_split_terminal(value, ordered))
                else:
                    symbols.append((kind, value))
            out.add_rule(name, symbols)
    return out


class HybridEngine:
    """Phase state of one hybrid campaign, owned by its ``PFuzzer``.

    The fuzzer calls :meth:`observe_campaign` at every iteration
    boundary, checks :meth:`plateaued`, and on a plateau runs one
    learn→generate phase through :meth:`learn`, :meth:`flood` and
    :meth:`finish_phase`.  All state (phase counter, watermarks, gain
    evidence, grammar, generation RNG) serialises via
    :meth:`to_payload` / :meth:`restore_payload` into campaign
    snapshots.
    """

    def __init__(self, config: HybridConfig, seed: Optional[int]) -> None:
        config.validate()
        self.config = config
        #: Completed learn→generate phases.
        self.phase = 0
        #: Executions counter at the end of the last phase (0 before the
        #: first), the anchor of the inter-phase floor.
        self.mined_at = 0
        self.grammar: Optional[Grammar] = None
        self.keywords: List[str] = []
        self._gain = GainEstimator(config.gain_config())
        self._last_executions = 0
        self._last_emits = 0
        self._gen_rng = random.Random(
            (seed if seed is not None else 0) ^ _GEN_SEED_SALT
        )
        self._generator: Optional[CompiledGenerator] = None

    # ------------------------------------------------------------------ #
    # Explore: plateau detection
    # ------------------------------------------------------------------ #

    def observe_campaign(self, executions: int, emitted: int) -> None:
        """Absorb the campaign's progress since the last observation.

        Called with the *cumulative* counters; the engine keeps its own
        watermarks so the posterior sees per-iteration deltas.
        """
        self._gain.observe(
            executions - self._last_executions, emitted - self._last_emits
        )
        self._last_executions = executions
        self._last_emits = emitted

    def plateaued(self, executions: int, distinct_valid: int) -> bool:
        """Should a learn→generate phase run now?

        Requires at least two distinct valid inputs (one-sentence
        corpora mine degenerate grammars whose floods cannot produce
        anything new), the inter-phase execution floor, and the gain
        posterior below its plateau bar with enough decayed evidence.
        """
        return (
            distinct_valid >= 2
            and executions - self.mined_at >= self.config.mine_after
            and self._gain.should_pause()
        )

    def gain_snapshot(self) -> dict:
        """JSON-safe posterior view for traces and ``/metrics``."""
        return self._gain.snapshot()

    # ------------------------------------------------------------------ #
    # Learn / generate
    # ------------------------------------------------------------------ #

    def learn(self, grammar: Grammar, keywords: Sequence[str]) -> None:
        """Install a freshly mined (already enriched) grammar.

        Recompiles the generator at the flood depth budget; the
        generation RNG stream continues across phases — the new
        closures bind the same ``Random`` instance.
        """
        self.grammar = grammar
        self.keywords = list(keywords)
        compiled = compile_grammar(grammar, max_depth=self.config.gen_depth)
        self._generator = CompiledGenerator(compiled, rng=self._gen_rng)

    def flood(
        self, limit: int, avoid: Container[str], max_length: int
    ) -> List[str]:
        """Up to ``limit`` fresh sentences for the generation phase.

        Deduplicated against ``avoid`` (the campaign's seen set) and
        each other, draw-bounded so a tiny grammar never spins, and
        filtered to the campaign's input-length cap.
        """
        if self._generator is None:
            return []
        sentences = self._generator.generate_many(limit, avoid=avoid)
        return [text for text in sentences if len(text) <= max_length]

    def finish_phase(self, executions: int, emitted: int) -> None:
        """Close one learn→generate phase and reset the plateau clock.

        The gain estimator restarts empty: post-flood exploration is
        measured on its own evidence, not the pre-plateau history, and
        ``min_evidence`` guarantees a full observation window before
        the next phase may fire.
        """
        self.phase += 1
        self.mined_at = executions
        self._last_executions = executions
        self._last_emits = emitted
        self._gain = GainEstimator(self.config.gain_config())

    # ------------------------------------------------------------------ #
    # Snapshot serialisation (see repro.eval.checkpoint)
    # ------------------------------------------------------------------ #

    def to_payload(self) -> dict:
        """JSON-safe engine state for campaign snapshots.

        Gain evidence is stored as raw floats (JSON round-trips Python
        floats exactly), the grammar through its sorted payload form,
        and the generation RNG verbatim — everything a resumed campaign
        needs to schedule and replay the remaining phases identically.
        """
        version, internal, gauss = self._gen_rng.getstate()
        return {
            "phase": self.phase,
            "mined_at": self.mined_at,
            "last_executions": self._last_executions,
            "last_emits": self._last_emits,
            "gain": [self._gain.executions, self._gain.discoveries],
            "grammar": None if self.grammar is None else self.grammar.to_payload(),
            "keywords": list(self.keywords),
            "gen_rng": [version, list(internal), gauss],
        }

    def restore_payload(self, payload: dict) -> None:
        """Restore :meth:`to_payload` state into this (fresh) engine."""
        self.phase = payload["phase"]
        self.mined_at = payload["mined_at"]
        self._last_executions = payload["last_executions"]
        self._last_emits = payload["last_emits"]
        self._gain = GainEstimator(self.config.gain_config())
        self._gain.executions, self._gain.discoveries = payload["gain"]
        version, internal, gauss = payload["gen_rng"]
        self._gen_rng.setstate((version, tuple(internal), gauss))
        if payload["grammar"] is not None:
            self.learn(
                Grammar.from_payload(payload["grammar"]), payload["keywords"]
            )
