"""Hybrid campaigns: parser-directed discovery feeding compiled generation.

The paper concedes in §7.4 that once pFuzzer has bootstrapped valid
inputs "it is more efficient to ... mine the grammar and use the mined
grammar for generating longer and more complex sequences".  This package
closes that loop as a first-class campaign mode:

* :mod:`repro.hybrid.compile` lowers a mined :class:`repro.miner.grammar.
  Grammar` into pre-bound Python closures with precomputed min-cost
  closing strings ("Building Fast Fuzzers"-style), replacing the
  recursive :class:`repro.miner.generate.GrammarFuzzer` interpreter on
  the generation hot path;
* :mod:`repro.hybrid.campaign` runs the alternation: pFuzzer explores
  until its coverage-gain posterior plateaus, the miner induces a
  grammar from the accumulated valid inputs (token boundaries labelled
  from the lineage log's comparison kinds), and the compiled generator
  floods candidates that re-seed the corpus as ``"gen"``-lineage roots
  and reset ``vBr`` before parser-directed search resumes.

The engine plugs into :class:`repro.core.fuzzer.PFuzzer` behind
``FuzzerConfig.hybrid`` and follows the iteration-boundary cadence
discipline: every phase switch is a pure function of the executions
counter and snapshot state, so hybrid campaigns keep the kill/resume
fingerprint-equivalence guarantees.
"""

from repro.hybrid.compile import (
    CompiledGrammar,
    CompiledGenerator,
    compile_grammar,
)
from repro.hybrid.campaign import (
    HybridConfig,
    HybridEngine,
    enrich_grammar,
    lineage_keywords,
)

__all__ = [
    "CompiledGrammar",
    "CompiledGenerator",
    "compile_grammar",
    "HybridConfig",
    "HybridEngine",
    "enrich_grammar",
    "lineage_keywords",
]
