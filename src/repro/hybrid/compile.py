"""Compiling mined grammars into wire-speed generators.

The recursive :class:`repro.miner.generate.GrammarFuzzer` interprets the
grammar on every expansion: it materialises each rule's alternative set,
draws from it, and — past the depth budget — recomputes every
alternative's closing cost before descending into the cheapest one.
That is fine for printing a handful of samples and far too slow for a
generation *phase* that floods thousands of candidates into a campaign.

This module lowers a :class:`repro.miner.grammar.Grammar` once, ahead of
time ("Building Fast Fuzzers"-style):

1. **Normalise** — drop references to undefined nonterminals, inline
   single-alternative non-recursive rules (mined grammars are full of
   them: every parser helper that was called one way becomes one), and
   merge adjacent terminals, so the remaining tables only contain real
   choice points.
2. **Precompute the min-cost closing** — the classic fixpoint gives each
   nonterminal its minimal expansion depth; from it every nonterminal
   gets a *canonical closing string* (cheapest alternative, ties broken
   deterministically) and every cheapest alternative gets its fully
   closed terminal text.  Past the depth budget, closing a nonterminal
   is then one random pick among precomputed strings — no descent, no
   cost recomputation.
3. **Generate closures** — one Python function per remaining
   nonterminal *per depth level* ("Building Fast Fuzzers"-style
   supercompilation): each clone calls its children's next-level clones
   directly, so the hot path carries no depth argument and performs no
   depth check, and clones at the last interior level constant-fold
   their children's closings into plain terminal runs — an alternative
   whose symbols all fold collapses to a single precomputed string, and
   a rule whose alternatives all collapse dispatches through one string
   table.  The RNG's ``random()`` is pre-bound and alternatives are
   dispatched by an if/elif ladder over one uniform draw (a tuple of
   per-alternative closures beyond a ladder-friendly fan-out); clones
   build their sentence as a returned ``+``-concatenation expression,
   small clones inline into their callers as walrus-bound ternary
   chains under a size budget, and the batch entry point expands the
   whole-sentence expression inside one list comprehension — the
   common case costs zero Python call frames per sentence.  Grammars
   with unclosable rules (or pathological name-times-depth products)
   fall back to a single depth-parameterised function per nonterminal
   appending terminal runs to a shared buffer, with a hard recursion
   bail.

Determinism contract: the compiled tables are a pure function of the
grammar (alternatives are sorted, never iterated in set order), and a
:class:`CompiledGenerator`'s output is a pure function of its RNG state
— seedable from campaign RNG state via ``getstate``/``setstate``, which
is what lets hybrid campaigns snapshot mid-phase and resume
fingerprint-identically.
"""

from __future__ import annotations

import random
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.miner.grammar import Expansion, Grammar, NONTERM, TERM

#: Alternative fan-out beyond which codegen dispatches through a tuple of
#: per-alternative closures instead of an if/elif ladder.
_LADDER_LIMIT = 16

#: Hard recursion bail for grammars containing nonterminals with no
#: finite closing expansion (impossible for grammars mined from real
#: inputs, possible for hand-built ones): past ``max_depth`` plus this
#: slack the generator emits the canonical closing string and stops.
_HARD_SLACK = 64

#: Cap on ``len(names) * max_depth`` beyond which codegen skips the
#: per-depth specialisation and falls back to one depth-parameterised
#: function per nonterminal (bounds generated-source size).
_UNROLL_LIMIT = 2048

#: Character budget for inlining a clone into its callers as one
#: conditional expression instead of a call.  Applied per level, so the
#: generated source stays linear in the grammar even though inlining
#: cascades bottom-up.
_INLINE_LIMIT = 800


class GrammarCompileError(ValueError):
    """The grammar cannot be compiled (e.g. it defines no start rule)."""


def _sorted_rules(grammar: Grammar) -> Dict[str, List[Expansion]]:
    """The grammar's rules with set order replaced by sorted order.

    Everything downstream iterates these lists, never the underlying
    sets, so the compiled artifact is independent of PYTHONHASHSEED.
    """
    return {name: sorted(expansions) for name, expansions in grammar.rules.items()}


def _drop_undefined(rules: Dict[str, List[Expansion]]) -> Dict[str, List[Expansion]]:
    """Remove references to nonterminals that have no rules (cf. prune)."""
    defined = set(rules)
    cleaned: Dict[str, List[Expansion]] = {}
    for name, expansions in rules.items():
        seen: Set[Expansion] = set()
        kept: List[Expansion] = []
        for expansion in expansions:
            filtered = tuple(
                symbol
                for symbol in expansion
                if symbol[0] == TERM or symbol[1] in defined
            )
            if filtered not in seen:
                seen.add(filtered)
                kept.append(filtered)
        cleaned[name] = kept
    return cleaned


def _recursive_names(rules: Dict[str, List[Expansion]]) -> Set[str]:
    """Nonterminals that can (transitively) expand to themselves."""
    reachable: Dict[str, Set[str]] = {}

    def reach(name: str) -> Set[str]:
        cached = reachable.get(name)
        if cached is not None:
            return cached
        reachable[name] = set()  # cycle guard: mid-computation, assume empty
        out: Set[str] = set()
        for expansion in rules.get(name, ()):
            for kind, value in expansion:
                if kind == NONTERM:
                    out.add(value)
                    out |= reach(value)
        reachable[name] = out
        return out

    return {name for name in rules if name in reach(name)}


def _merge_terminals(expansion: Sequence[Tuple[str, str]]) -> Expansion:
    """Concatenate adjacent terminal symbols into single runs."""
    merged: List[Tuple[str, str]] = []
    for kind, value in expansion:
        if kind == TERM and merged and merged[-1][0] == TERM:
            merged[-1] = (TERM, merged[-1][1] + value)
        else:
            merged.append((kind, value))
    return tuple(symbol for symbol in merged if symbol != (TERM, ""))


def _inline_single_alts(
    rules: Dict[str, List[Expansion]], start: str
) -> Dict[str, List[Expansion]]:
    """Splice single-alternative non-recursive rules into their callers.

    Mined grammars nest one rule per parser function; chains of helpers
    with exactly one observed expansion contribute no choice, only call
    overhead.  Inlining them (and re-merging terminals) leaves a table
    of genuine decision points.  The start rule always survives.
    """
    recursive = _recursive_names(rules)
    while True:
        candidates = {
            name: expansions[0]
            for name, expansions in rules.items()
            if name != start and name not in recursive and len(expansions) == 1
        }
        # Defer candidates whose bodies reference other candidates: they
        # inline on a later pass, after their references were spliced —
        # otherwise a chain like s->a b, a->"[" b "]", b->"x" would splice
        # a's body (still naming b) while deleting b in the same pass.
        # The candidate reference graph is acyclic (recursive rules are
        # excluded), so some candidate is always reference-free.
        inlinable = {
            name: expansion
            for name, expansion in candidates.items()
            if not any(
                symbol[0] == NONTERM and symbol[1] in candidates
                for symbol in expansion
            )
        }
        if not inlinable:
            return rules
        next_rules: Dict[str, List[Expansion]] = {}
        for name, expansions in rules.items():
            if name in inlinable:
                continue
            rewritten: List[Expansion] = []
            seen: Set[Expansion] = set()
            for expansion in expansions:
                out: List[Tuple[str, str]] = []
                for symbol in expansion:
                    if symbol[0] == NONTERM and symbol[1] in inlinable:
                        out.extend(inlinable[symbol[1]])
                    else:
                        out.append(symbol)
                merged = _merge_terminals(out)
                if merged not in seen:
                    seen.add(merged)
                    rewritten.append(merged)
            next_rules[name] = rewritten
        rules = next_rules
        # Inlined bodies may themselves reference inlinable rules; loop
        # until a pass removes nothing.  Termination: every pass deletes
        # at least one rule.


def _min_costs(rules: Dict[str, List[Expansion]]) -> Dict[str, float]:
    """Minimal expansion depth per nonterminal (the standard fixpoint)."""
    infinity = float("inf")
    costs = {name: infinity for name in rules}
    changed = True
    while changed:
        changed = False
        for name, expansions in rules.items():
            for expansion in expansions:
                cost = 1.0
                for kind, value in expansion:
                    if kind == NONTERM:
                        cost = max(cost, 1.0 + costs.get(value, infinity))
                if cost < costs[name]:
                    costs[name] = cost
                    changed = True
    return costs


def _expansion_cost(expansion: Expansion, costs: Dict[str, float]) -> float:
    cost = 1.0
    for kind, value in expansion:
        if kind == NONTERM:
            cost = max(cost, 1.0 + costs.get(value, float("inf")))
    return cost


def _closing_strings(
    rules: Dict[str, List[Expansion]], costs: Dict[str, float]
) -> Dict[str, str]:
    """One canonical minimal closing string per nonterminal.

    The cheapest alternative is taken at every level (first in sorted
    order on ties), memoised; a nonterminal with no finite closing cost
    closes as the empty string — generation still terminates, which is
    strictly better than the interpreter's unbounded descent.
    """
    closed: Dict[str, str] = {}

    def close(name: str) -> str:
        cached = closed.get(name)
        if cached is not None:
            return cached
        closed[name] = ""  # cycle guard for infinite-cost grammars
        expansions = rules.get(name, ())
        if not expansions or costs.get(name, float("inf")) == float("inf"):
            return ""
        best = min(expansions, key=lambda e: (_expansion_cost(e, costs), e))
        pieces = [
            value if kind == TERM else close(value) for kind, value in best
        ]
        text = "".join(pieces)
        closed[name] = text
        return text

    for name in rules:
        close(name)
    return closed


class CompiledGrammar:
    """The lowered form of one mined grammar: flat tables plus source.

    Attributes:
        start: the start nonterminal's name.
        names: surviving nonterminal names, sorted (index = compiled id).
        alts: per nonterminal, the sorted alternatives as merged symbol
            tuples — the flat choice tables the closures are generated
            from.
        cheap_closings: per nonterminal, the precomputed fully-closed
            terminal strings of its minimal-cost alternatives (what the
            generator appends past the depth budget).
        costs: minimal expansion depth per nonterminal.
        source: the generated Python source (one function per
            nonterminal and depth level, or per nonterminal in the
            fallback form), kept for inspection and tests.
        inlined: how many single-alternative rules were spliced away.
        max_depth: depth budget baked into the generated dispatch.
        unrolled: whether codegen specialised per depth level (False
            for unclosable grammars and pathological name-times-depth
            products, which take the depth-parameterised fallback).
    """

    def __init__(self, grammar: Grammar, max_depth: int = 12) -> None:
        if max_depth < 1:
            raise GrammarCompileError("max_depth must be positive")
        rules = _drop_undefined(_sorted_rules(grammar))
        if grammar.start not in rules or not rules[grammar.start]:
            raise GrammarCompileError(
                f"grammar defines no expansions for start rule "
                f"{grammar.start!r}"
            )
        total_rules = len(rules)
        rules = {
            name: [_merge_terminals(expansion) for expansion in expansions]
            for name, expansions in rules.items()
        }
        rules = _inline_single_alts(rules, grammar.start)
        self.start = grammar.start
        self.names: List[str] = sorted(rules)
        self.alts: Dict[str, List[Expansion]] = rules
        self.costs = _min_costs(rules)
        self.inlined = total_rules - len(rules)
        self.max_depth = max_depth
        closings = _closing_strings(rules, self.costs)
        self.cheap_closings: Dict[str, List[str]] = {}
        for name, expansions in rules.items():
            cheapest = min(
                (_expansion_cost(e, self.costs) for e in expansions),
                default=float("inf"),
            )
            strings: List[str] = []
            seen: Set[str] = set()
            for expansion in expansions:
                if _expansion_cost(expansion, self.costs) > cheapest:
                    continue
                text = "".join(
                    value if kind == TERM else closings.get(value, "")
                    for kind, value in expansion
                )
                if text not in seen:
                    seen.add(text)
                    strings.append(text)
            self.cheap_closings[name] = strings or [""]
        self.source = self._generate_source()

    # -- codegen -------------------------------------------------------- #

    def _function_name(self, name: str) -> str:
        return f"_gen_{self.names.index(name)}"

    def _body_lines(self, expansion: Expansion, indent: str) -> List[str]:
        lines: List[str] = []
        for kind, value in expansion:
            if kind == TERM:
                lines.append(f"{indent}_out({value!r})")
            else:
                lines.append(f"{indent}{self._function_name(value)}(d1)")
        if not lines:
            lines.append(f"{indent}pass")
        return lines

    def _dispatch_lines(
        self, name: str, expansions: List[Expansion], indent: str
    ) -> List[str]:
        """An if/elif ladder over one uniform draw (or a closure table)."""
        lines: List[str] = []
        count = len(expansions)
        if count == 1:
            return self._body_lines(expansions[0], indent)
        if count > _LADDER_LIMIT:
            lines.append(
                f"{indent}_alts_{self.names.index(name)}"
                f"[_int(_r() * {count})](d1)"
            )
            return lines
        lines.append(f"{indent}r = _r()")
        for position, expansion in enumerate(expansions):
            if position == 0:
                lines.append(f"{indent}if r < {1.0 / count!r}:")
            elif position == count - 1:
                lines.append(f"{indent}else:")
            else:
                lines.append(f"{indent}elif r < {(position + 1) / count!r}:")
            lines.extend(self._body_lines(expansion, indent + "    "))
        return lines

    def _closing_lines(self, name: str, indent: str) -> List[str]:
        strings = self.cheap_closings[name]
        if len(strings) == 1:
            return [f"{indent}_out({strings[0]!r})"]
        return [
            f"{indent}_out(_close_{self.names.index(name)}"
            f"[_int(_r() * {len(strings)})])"
        ]

    def _generate_source(self) -> str:
        """Pick the codegen strategy; see the module docstring."""
        has_infinite = any(
            cost == float("inf") for cost in self.costs.values()
        )
        if has_infinite or len(self.names) * self.max_depth > _UNROLL_LIMIT:
            self.unrolled = False
            return self._generate_source_looped(has_infinite)
        self.unrolled = True
        return self._generate_source_unrolled()

    def _generate_source_looped(self, has_infinite: bool) -> str:
        """Fallback form: one depth-parameterised function per rule."""
        hard = self.max_depth + _HARD_SLACK
        lines: List[str] = []
        for name in self.names:
            expansions = self.alts[name]
            fn = self._function_name(name)
            lines.append(f"def {fn}(d):")
            if has_infinite:
                # Grammars with unclosable rules get a hard bail so the
                # generated closures always terminate.
                lines.append(f"    if d > {hard}:")
                lines.extend(self._closing_lines(name, "        "))
                lines.append("        return")
            lines.append(f"    if d < {self.max_depth}:")
            lines.append("        d1 = d + 1")
            lines.extend(self._dispatch_lines(name, expansions, "        "))
            lines.append("    else:")
            lines.extend(self._closing_lines(name, "        "))
            lines.append("")
        for name in self.names:
            if len(self.alts[name]) > _LADDER_LIMIT:
                index = self.names.index(name)
                lines.append(f"def _table_{index}():")
                for position, expansion in enumerate(self.alts[name]):
                    lines.append(f"    def _alt_{position}(d1):")
                    lines.extend(
                        self._body_lines(expansion, "        ")
                    )
                    lines.append("")
                members = ", ".join(
                    f"_alt_{position}"
                    for position in range(len(self.alts[name]))
                )
                lines.append(f"    return ({members},)")
                lines.append(f"_alts_{index} = _table_{index}()")
                lines.append("")
        lines.append("def _entry():")
        lines.append(f"    {self._function_name(self.start)}(0)")
        lines.append("    text = ''.join(_buf)")
        lines.append("    del _buf[:]")
        lines.append("    return text")
        lines.append("")
        lines.append("def _many(n):")
        lines.append("    return [_entry() for _ in range(n)]")
        return "\n".join(lines)

    # -- depth-specialised codegen -------------------------------------- #

    def _closing_piece(self, name: str) -> Optional[str]:
        """The child's closing as a constant, or None when it's a draw."""
        strings = self.cheap_closings[name]
        return strings[0] if len(strings) == 1 else None

    def _unrolled_pieces(
        self, expansion: Expansion, depth: int
    ) -> List[Tuple[str, str]]:
        """One alternative at ``depth`` as ``("const", text)`` /
        ``("code", statement)`` pieces, closings constant-folded.

        Adjacent terminals and single-closing children merge into one
        constant run; only genuine draws (next-level calls and
        multi-closing picks) survive as separate statements.
        """
        pieces: List[Tuple[str, str]] = []
        constant = ""

        def walk(expansion: Expansion, depth: int) -> None:
            nonlocal constant
            closing_level = depth + 1 >= self.max_depth
            for kind, value in expansion:
                if kind == TERM:
                    constant += value
                    continue
                if closing_level:
                    piece = self._closing_piece(value)
                    if piece is not None:
                        constant += piece
                        continue
                else:
                    folded = self._const_clones.get((value, depth + 1))
                    if folded is not None:
                        # The child's clone produces one deterministic
                        # string: merge it into this constant run (and
                        # let the fold cascade another level up).
                        constant += folded
                        continue
                    if len(self.alts[value]) == 1:
                        # A choice-free child contributes no draw of its
                        # own at this level: splice its body inline
                        # (depth still advances, so recursion stays
                        # bounded and the draw stream is unchanged).
                        walk(self.alts[value][0], depth + 1)
                        continue
                if constant:
                    pieces.append(("const", constant))
                    constant = ""
                index = self.names.index(value)
                if closing_level:
                    count = len(self.cheap_closings[value])
                    pieces.append(
                        ("expr", f"_close_{index}[_int(_r() * {count})]")
                    )
                    continue
                table = self._table_clones.get((value, depth + 1))
                if table is not None:
                    # The child's clone is a string table behind one
                    # draw: inline the lookup, skipping the call frame.
                    pieces.append(
                        (
                            "expr",
                            f"_alts_{index}_{depth + 1}"
                            f"[_int(_r() * {len(table)})]",
                        )
                    )
                    continue
                inline = self._inline_exprs.get((value, depth + 1))
                if inline is not None:
                    # Small clone: splice its conditional expression
                    # in place of the call (same draws, same order).
                    pieces.append(("expr", inline))
                else:
                    pieces.append(("expr", f"_gen_{index}_{depth + 1}()"))

        walk(expansion, depth)
        if constant:
            pieces.append(("const", constant))
        return pieces

    def _unrolled_expr(self, expansion: Expansion, depth: int) -> str:
        """The alternative as one string-valued expression.

        Left-to-right ``+`` evaluation is depth-first order, so the
        draw stream matches the statement form symbol for symbol.
        """
        pieces = self._unrolled_pieces(expansion, depth)
        if not pieces:
            return "''"
        return " + ".join(
            f"{text!r}" if kind == "const" else text for kind, text in pieces
        )

    def _fold_constant(self, expansion: Expansion, depth: int) -> Optional[str]:
        """The alternative's full text when it folds to one constant."""
        pieces = self._unrolled_pieces(expansion, depth)
        if not pieces:
            return ""
        if len(pieces) == 1 and pieces[0][0] == "const":
            return pieces[0][1]
        return None

    def _clone_expr(self, name: str, depth: int) -> Optional[str]:
        """The clone as one expression, for inlining into callers.

        Multi-alternative clones become a parenthesised conditional over
        one named walrus draw (``r_<id>_<depth>`` — unique per clone, so
        nested inlines never collide); the bucket thresholds match the
        ladder form exactly, keeping the draw stream identical.  Clones
        past the ladder limit dispatch through their closure table.
        Returns None when the expression would blow the inline budget.
        """
        expansions = self.alts[name]
        index = self.names.index(name)
        count = len(expansions)
        if count == 1:
            return self._unrolled_expr(expansions[0], depth)
        if count > _LADDER_LIMIT:
            return f"_alts_{index}_{depth}[_int(_r() * {count})]()"
        draw = f"r_{index}_{depth}"
        branches: List[str] = []
        for position, expansion in enumerate(expansions):
            expr = self._unrolled_expr(expansion, depth)
            if len(expr) > _INLINE_LIMIT:
                return None
            if position == 0:
                branches.append(
                    f"{expr} if ({draw} := _r()) < {1.0 / count!r}"
                )
            elif position == count - 1:
                branches.append(expr)
            else:
                branches.append(
                    f"{expr} if {draw} < {(position + 1) / count!r}"
                )
        return "(" + " else ".join(branches) + ")"

    def _generate_source_unrolled(self) -> str:
        """One function per (nonterminal, depth); see module docstring.

        A bottom-up classification pass first finds the clones that
        collapse — to one deterministic string (``_const_clones``) or to
        a string table behind a single draw (``_table_clones``) — so
        parents can merge or inline them instead of calling.  Dispatch
        through a table is ladder-equivalent (``int(r * n)`` picks the
        ladder's bucket), so collapsing never changes the draw stream.
        """
        self._const_clones: Dict[Tuple[str, int], str] = {}
        self._table_clones: Dict[Tuple[str, int], List[str]] = {}
        self._inline_exprs: Dict[Tuple[str, int], str] = {}
        for depth in range(self.max_depth - 1, -1, -1):
            for name in self.names:
                folded = [
                    self._fold_constant(expansion, depth)
                    for expansion in self.alts[name]
                ]
                if all(text is not None for text in folded):
                    if len(folded) == 1:
                        self._const_clones[(name, depth)] = folded[0]
                    else:
                        self._table_clones[(name, depth)] = folded
                    continue
                expr = self._clone_expr(name, depth)
                if expr is not None and len(expr) <= _INLINE_LIMIT:
                    self._inline_exprs[(name, depth)] = expr
        lines: List[str] = []
        tables: List[str] = []
        for name in self.names:
            expansions = self.alts[name]
            index = self.names.index(name)
            count = len(expansions)
            for depth in range(self.max_depth):
                fn = f"_gen_{index}_{depth}"
                lines.append(f"def {fn}():")
                constant = self._const_clones.get((name, depth))
                if constant is not None:
                    lines.append(f"    return {constant!r}")
                    lines.append("")
                    continue
                table_strings = self._table_clones.get((name, depth))
                if table_strings is not None:
                    table = f"_alts_{index}_{depth}"
                    members = ", ".join(
                        f"{text!r}" for text in table_strings
                    )
                    tables.append(f"{table} = ({members},)")
                    lines.append(f"    return {table}[_int(_r() * {count})]")
                    lines.append("")
                    continue
                if count == 1:
                    expr = self._unrolled_expr(expansions[0], depth)
                    lines.append(f"    return {expr}")
                    lines.append("")
                    continue
                if count > _LADDER_LIMIT:
                    table = f"_alts_{index}_{depth}"
                    tables.append(f"def _table_{index}_{depth}():")
                    for position, expansion in enumerate(expansions):
                        expr = self._unrolled_expr(expansion, depth)
                        tables.append(f"    def _alt_{position}():")
                        tables.append(f"        return {expr}")
                        tables.append("")
                    members = ", ".join(
                        f"_alt_{position}" for position in range(count)
                    )
                    tables.append(f"    return ({members},)")
                    tables.append(f"{table} = _table_{index}_{depth}()")
                    tables.append("")
                    lines.append(f"    return {table}[_int(_r() * {count})]()")
                    lines.append("")
                    continue
                lines.append("    r = _r()")
                for position, expansion in enumerate(expansions):
                    if position == 0:
                        lines.append(f"    if r < {1.0 / count!r}:")
                    elif position == count - 1:
                        lines.append("    else:")
                    else:
                        lines.append(
                            f"    elif r < {(position + 1) / count!r}:"
                        )
                    expr = self._unrolled_expr(expansion, depth)
                    lines.append(f"        return {expr}")
                lines.append("")
        target_name, target_depth = self.start, 0
        start_pieces = (
            self._unrolled_pieces(self.alts[self.start][0], 0)
            if len(self.alts[self.start]) == 1
            else None
        )
        if start_pieces is not None and len(start_pieces) == 1:
            # The start clone only forwards to another clone: skip its
            # call frame on every sentence by aliasing the entry point.
            # Only a plain clone call qualifies — an inlined dispatch
            # expression draws from the RNG, so aliasing it would fix
            # the draw at definition time.
            forward = re.fullmatch(r"_gen_(\d+)_(\d+)\(\)", start_pieces[0][1])
            if start_pieces[0][0] == "expr" and forward:
                target_name = self.names[int(forward.group(1))]
                target_depth = int(forward.group(2))
        entry = f"_gen_{self.names.index(target_name)}_{target_depth}"
        out = tables + lines
        out.append(f"_entry = {entry}")
        out.append("")
        many_expr = self._clone_expr(target_name, target_depth)
        if many_expr is not None and len(many_expr) <= 8 * _INLINE_LIMIT:
            # The whole-sentence expression fits a sane budget: the
            # batch loop needs no Python call frames at all.  Walrus
            # draws bind in _many's scope, fresh per element.
            out.append("def _many(n):")
            out.append(f"    return [{many_expr} for _ in range(n)]")
        else:
            out.append("def _many(n):")
            out.append("    return [_entry() for _ in range(n)]")
        return "\n".join(out)


def compile_grammar(grammar: Grammar, max_depth: int = 12) -> CompiledGrammar:
    """Lower ``grammar`` into flat tables and generated closure source."""
    return CompiledGrammar(grammar, max_depth=max_depth)


class CompiledGenerator:
    """Executes a :class:`CompiledGrammar` against one RNG stream.

    Args:
        compiled: a :class:`CompiledGrammar` (or a raw
            :class:`~repro.miner.grammar.Grammar`, compiled on the fly
            with the default depth budget).
        seed: PRNG seed; ignored when ``rng`` is given.
        rng: an existing ``random.Random`` to draw from — how hybrid
            campaigns seed generation from campaign RNG state.

    Output is a pure function of the RNG state: :meth:`getstate` /
    :meth:`setstate` round-trip through campaign snapshots.
    """

    def __init__(
        self,
        compiled: "CompiledGrammar | Grammar",
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        if isinstance(compiled, Grammar):
            compiled = compile_grammar(compiled)
        self.compiled = compiled
        self._rng = rng if rng is not None else random.Random(seed)
        self._buffer: List[str] = []
        namespace: Dict[str, object] = {
            "_r": self._rng.random,
            "_out": self._buffer.append,
            "_buf": self._buffer,
            "_int": int,
        }
        for name in compiled.names:
            index = compiled.names.index(name)
            strings = compiled.cheap_closings[name]
            if len(strings) > 1:
                namespace[f"_close_{index}"] = tuple(strings)
        exec(compiled.source, namespace)  # noqa: S102 - our own codegen
        self._start = namespace["_entry"]
        self._many = namespace["_many"]

    def getstate(self):
        """The underlying RNG state (``random.Random.getstate`` form)."""
        return self._rng.getstate()

    def setstate(self, state) -> None:
        """Restore an RNG state captured by :meth:`getstate`."""
        self._rng.setstate(state)

    def generate(self) -> str:
        """One random sentence from the compiled grammar."""
        return self._start()

    def generate_many(
        self,
        count: int,
        *,
        avoid=None,
        max_attempts: Optional[int] = None,
    ) -> List[str]:
        """Up to ``count`` sentences, optionally deduplicated.

        With ``avoid`` given (any container supporting ``in``), only
        sentences outside it — and distinct from each other — are
        returned, and the number of draws is bounded by ``max_attempts``
        (default ``4 * count + 16``) so a tiny grammar that can only
        produce a handful of sentences never spins: the result is then
        simply shorter than ``count``.  Without ``avoid``, exactly
        ``count`` sentences are drawn (duplicates possible).
        """
        if avoid is None:
            # Batch fast path: the generated _many comprehension inlines
            # the whole-sentence expression, so drawing a batch spends
            # no Python call frames per sentence.
            return self._many(count)
        if max_attempts is None:
            max_attempts = 4 * count + 16
        out: List[str] = []
        produced: Set[str] = set()
        attempts = 0
        while len(out) < count and attempts < max_attempts:
            attempts += 1
            text = self.generate()
            if text in produced or text in avoid:
                continue
            produced.add(text)
            out.append(text)
        return out
