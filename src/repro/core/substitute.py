"""Deriving substitution candidates from a comparison trace.

This is the step the paper sketches as "replace the character that was
lastly compared with one of the values it was compared to" (§3).  Given one
execution's :class:`~repro.runtime.harness.RunResult`:

1. find the last compared input index;
2. collect every comparison whose span covers that index — single-character
   relations, character-class checks, and ``strcmp``-style string
   comparisons that *started* earlier but constrain the index;
3. for every value such a comparison would accept, build a new input by
   splicing the value in at the comparison's start index.  Everything after
   the splice is dropped: those characters were never compared, so the
   parser never looked at them.

Comparisons at the EOF index (one past the end) produce *appends* — this is
how prefixes such as ``"(2"`` get closed into ``"(2)"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.runtime.harness import RunResult


@dataclass(frozen=True, slots=True)
class Substitution:
    """One derived input: ``text`` came from splicing ``replacement`` in.

    ``kind`` and ``expected`` carry the comparison that caused the splice
    (the operator's schema name, e.g. ``"strcmp"`` or ``"=="``, and the
    value the parser compared against) — the provenance the lineage tree
    records so every synthesised keyword is explainable.  ``slots=True``:
    dozens are derived per execution on the hot loop.
    """

    text: str
    replacement: str
    at_index: int
    kind: str = ""
    expected: str = ""


def substitutions_for(result: RunResult) -> List[Substitution]:
    """All substitution candidates derivable from one execution.

    Returns an empty list when nothing was compared (the parser rejected
    without looking at the input, or accepted without comparisons).
    """
    recorder = result.recorder
    last = recorder.last_compared_index()
    if last is None:
        return []
    text = result.text
    seen = set()
    out: List[Substitution] = []
    for event in recorder.comparisons_touching(last):
        for value in event.replacement_candidates():
            if not value:
                continue
            new_text = text[: event.index] + value
            if new_text == text or new_text in seen:
                continue
            seen.add(new_text)
            out.append(
                Substitution(
                    new_text,
                    value,
                    event.index,
                    event.kind.value,
                    event.other_value,
                )
            )
    return out
