"""Configuration of the parser-directed fuzzer."""

from __future__ import annotations

import string
from dataclasses import dataclass, field
from typing import Optional

#: Default pool the fuzzer appends random characters from: printable ASCII
#: plus the common whitespace control characters.  The paper uses "the set of
#: all ASCII characters"; restricting to printables only changes how often a
#: random append is immediately useless.
DEFAULT_CHARACTER_POOL = (
    string.ascii_letters + string.digits + string.punctuation + " \t\n"
)


@dataclass
class HeuristicWeights:
    """Weights of the §3.1 search heuristic (Algorithm 1, Lines 47–51).

    The paper's formula is::

        cov  = |branches \\ vBr|
        cov -= len(input)
        cov += 2 * len(replacement)
        cov -= avgStackSize()
        cov += numParents          # but see `parents` below

    Attributes:
        new_branches: weight of newly covered branches (Line 48).
        input_length: penalty per input character (Line 49) — avoids
            coverage-driven depth-first blowup.
        replacement_length: bonus per replacement character (Line 49) —
            favours string-comparison substitutions, i.e. keywords.
        stack_size: penalty on the average stack size between the last two
            comparisons (Line 50) — favours inputs that close syntactic
            features.
        parents: weight of the substitution-chain length.  Algorithm 1
            literally *adds* numParents, but the prose says inputs with
            fewer parents should rank higher; we default to the prose
            (negative weight).  The ablation bench measures both signs.
        path_repetition: penalty per prior execution of the same branch
            path (§3.2: inputs covering already-taken paths rank lower).
    """

    new_branches: float = 1.0
    input_length: float = 1.0
    replacement_length: float = 2.0
    stack_size: float = 1.0
    parents: float = -1.0
    path_repetition: float = 1.0


@dataclass
class FuzzerConfig:
    """Runtime knobs of one fuzzing campaign.

    Attributes:
        seed: PRNG seed; None draws entropy from the OS.
        max_executions: execution budget (each loop iteration costs up to
            two executions, §3.1).  The stand-in for the paper's 48 hours.
        max_valid_inputs: stop early after emitting this many new-coverage
            valid inputs (None = no cap).
        max_input_length: safety cap; longer candidates are not extended.
        queue_limit: maximum queue size; lowest-scored candidates are
            dropped beyond it.
        character_pool: characters used for random appends.
        weights: heuristic weights.
        trace_coverage: disable to skip branch tracing (the heuristic then
            degrades to comparisons only; used by ablations).
        coverage_backend: ``"settrace"`` (reference tracer) or ``"ast"``
            (compiled-in AST instrumentation, several times faster; see
            :mod:`repro.runtime.instrument`).  Both backends produce
            identical campaigns for the same seed.
        checkpoint_dir: directory for durable campaign snapshots (see
            :mod:`repro.eval.checkpoint`); None disables checkpointing.
        checkpoint_every: write a snapshot every N subject executions
            (checked at the iteration boundary, so the actual spacing can
            overshoot by one iteration's executions).
        checkpoint_keep: snapshot generations retained on disk; older ones
            are deleted after each successful write.
        resume: restore the newest valid snapshot from ``checkpoint_dir``
            before fuzzing; a resumed campaign is byte-identical (modulo
            timings) to an uninterrupted one with the same config.
        trace_path: write a structured NDJSON trace of the campaign to
            this file (see :mod:`repro.obs.trace`); None disables tracing
            (the null-recorder fast path).  Tracing never affects the
            campaign's result: lineage ids are assigned identically with
            tracing on or off, and ``trace_path`` is excluded from the
            snapshot fingerprint so a resumed campaign may toggle it.
        shard_id: this campaign's index within a sharded group (AFL's
            ``-M/-S`` model; see DESIGN.md §8).  With ``shard_count`` > 1
            the substitution/append candidate space is deterministically
            partitioned: a shard only queues the substitutions it owns
            and appends from its slice of the character pool.
        shard_count: number of shards in the group.  The default of 1
            disables partitioning entirely — a single-shard campaign is
            byte-identical to a pre-sharding one.
        shard_rotate_every: rotation cadence in executions.  Ownership is
            keyed on ``(hash(text) + epoch) % shard_count`` where
            ``epoch = executions // shard_rotate_every``, so the partition
            rotates over time and no candidate is permanently orphaned on
            a shard that never reaches it.
        sync_store: path of a shared :class:`~repro.eval.corpus_store.
            CorpusStore` JSONL file this shard pushes its valid inputs to
            and imports other shards' inputs from; None disables corpus
            sync.  Like ``checkpoint_dir``, the path is environmental and
            excluded from the snapshot fingerprint.
        sync_every: exchange inputs with ``sync_store`` every N subject
            executions, checked at the iteration boundary (the same
            cadence discipline as ``checkpoint_every``, which is also the
            default when None).  Determinism contract: sync points are a
            pure function of the executions counter, so a killed and
            resumed shard syncs at exactly the points the uninterrupted
            run would have.
        executor: execution engine — ``"inline"`` (run candidates in
            this process, the reference path) or ``"pooled"`` (persistent
            forked-worker executor, see :mod:`repro.runtime.executor`:
            the subject is loaded and instrumented once per worker and
            candidates are served over a pipe, AFL-forkserver style).
            Both engines produce byte-identical campaigns; like
            ``trace_path``, the choice is environmental and excluded from
            the snapshot fingerprint, so a resumed campaign may switch.
        batch_size: with ``executor="pooled"``, how many candidates the
            fuzzer submits per speculative round-trip (the current pop
            plus the queue's likely next pops).  1 disables speculation;
            results are cached by input text, so batching never changes
            the campaign result.
        executor_workers: persistent worker processes for the pooled
            engine.
        executor_isolation: ``"auto"`` (fork per candidate where
            ``os.fork`` exists), ``"fork"``, or ``"none"`` (same-process
            re-init fallback).  Fork isolation discards any state a run
            mutated; the in-process fallback relies on the harness's
            per-run reset and is equivalence-tested too.
        cull_every: run :meth:`repro.core.queue.CandidateQueue.cull`
            every N subject executions, checked at the iteration boundary
            (the same cadence discipline as ``checkpoint_every`` /
            ``sync_every``): dead entries (text already executed) and
            dominated duplicates are dropped, keeping long campaigns'
            re-scores proportional to the live frontier.  None disables
            culling.  Environmental like ``trace_path``: culling never
            changes the campaign result (the equivalence suite asserts
            fingerprint identity with culling on and off), so it is
            excluded from the snapshot fingerprint and a resumed campaign
            may toggle it.
        hybrid: run the campaign as a hybrid discover→learn→generate
            loop (see :mod:`repro.hybrid`): parser-directed search runs
            until the coverage-gain posterior plateaus, a grammar is
            mined from the accumulated valid inputs (token boundaries
            enriched from the lineage log), and the compiled generator
            floods candidates that re-seed the corpus as ``"gen"``
            lineage roots and reset ``vBr``.  Unlike the environmental
            knobs above, hybrid mode *changes the campaign result*, so
            it (and its three phase knobs) participates in the snapshot
            fingerprint and must match on resume.
        mine_after: decayed-execution evidence the gain estimator needs
            before a plateau can trigger a mining phase (see
            :class:`repro.hybrid.campaign.HybridConfig`); also the floor
            between consecutive mining phases.
        gen_batch: maximum generated candidates injected per generation
            flood.
        gen_depth: depth budget of the compiled generator during floods.
            Shallow floods (the default) produce corpus-scale re-seed
            roots whose structure deepens across mining rounds; subjects
            whose coverage lives in deep input structure (tinyC programs)
            benefit from flooding deeper directly.
        hunt_crashes: treat crashes as campaign findings: crashing inputs
            are recorded (deduplicated by failure-site signature, see
            :func:`repro.runtime.harness.failure_site`), emitted as
            ``crash_found`` trace events, and surface in
            ``FuzzingResult.crash_inputs`` for the corpus store.  Off,
            crashes are still counted and kept alive-but-ignored (the
            status fix) — hunting only changes what is *recorded*, but
            recorded findings join the result, so like ``hybrid`` the
            flag participates in the snapshot fingerprint and must match
            on resume.
    """

    seed: Optional[int] = None
    max_executions: int = 2_000
    max_valid_inputs: Optional[int] = None
    max_input_length: int = 200
    queue_limit: int = 5_000
    character_pool: str = DEFAULT_CHARACTER_POOL
    weights: HeuristicWeights = field(default_factory=HeuristicWeights)
    trace_coverage: bool = True
    coverage_backend: str = "settrace"
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 500
    checkpoint_keep: int = 2
    resume: bool = False
    trace_path: Optional[str] = None
    shard_id: int = 0
    shard_count: int = 1
    shard_rotate_every: int = 200
    sync_store: Optional[str] = None
    sync_every: Optional[int] = None
    executor: str = "inline"
    batch_size: int = 1
    executor_workers: int = 1
    executor_isolation: str = "auto"
    cull_every: Optional[int] = None
    hybrid: bool = False
    mine_after: int = 600
    gen_batch: int = 32
    gen_depth: int = 3
    hunt_crashes: bool = False
    #: Optional seed corpus.  pFuzzer needs none (the paper's point), but a
    #: previous campaign's corpus can be resumed from here; seeds are
    #: processed before the empty-string start.
    initial_inputs: tuple = ()
