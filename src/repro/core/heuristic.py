"""The §3.1 search heuristic (Algorithm 1, ``heur``, Lines 47–51)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.core.candidate import Candidate
from repro.core.config import HeuristicWeights

Arc = Tuple[str, int, int]


def heuristic_score(
    candidate: Candidate,
    valid_branches: FrozenSet[Arc],
    path_counts: Dict[int, int],
    weights: HeuristicWeights,
) -> float:
    """Score a candidate; higher means "execute sooner".

    Mirrors the paper's formula with configurable weights:

    * newly covered branches of the parent w.r.t. the branches covered by
      valid inputs so far (``branches \\ vBr``);
    * minus the input length (anti-depth-first);
    * plus twice the replacement length (pro-keyword);
    * minus the average stack size (pro-closing);
    * parents term (prose: fewer parents rank higher);
    * minus a penalty for how often the parent's branch path was already
      executed (§3.2 path novelty).
    """
    new_branches = len(candidate.parent_branches - valid_branches)
    score = weights.new_branches * new_branches
    score -= weights.input_length * len(candidate.text)
    score += weights.replacement_length * len(candidate.replacement)
    score -= weights.stack_size * candidate.avg_stack
    score += weights.parents * candidate.parents
    score -= weights.path_repetition * path_counts.get(candidate.path_signature, 0)
    return score
