"""The §3.1 search heuristic (Algorithm 1, ``heur``, Lines 47–51)."""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.candidate import Candidate
from repro.core.config import HeuristicWeights


def static_score(candidate: Candidate, weights: HeuristicWeights) -> float:
    """The vBr-independent part of the score.

    Everything except the new-branches term and the path-repetition penalty
    depends only on the candidate itself, so the fuzzer computes it once and
    caches it on the candidate (``Candidate.static_score``).
    """
    score = -weights.input_length * len(candidate.text)
    score += weights.replacement_length * len(candidate.replacement)
    score -= weights.stack_size * candidate.avg_stack
    score += weights.parents * candidate.parents
    return score


def heuristic_score(
    candidate: Candidate,
    valid_branches: FrozenSet[int],
    path_counts: Dict[int, int],
    weights: HeuristicWeights,
) -> float:
    """Score a candidate; higher means "execute sooner".

    Mirrors the paper's formula with configurable weights:

    * newly covered branches of the parent w.r.t. the branches covered by
      valid inputs so far (``branches \\ vBr``);
    * minus the input length (anti-depth-first);
    * plus twice the replacement length (pro-keyword);
    * minus the average stack size (pro-closing);
    * parents term (prose: fewer parents rank higher);
    * minus a penalty for how often the parent's branch path was already
      executed (§3.2 path novelty).

    This is the from-scratch reference; the fuzzer's hot path combines the
    cached :func:`static_score` and ``Candidate.new_count`` instead.
    """
    # ``parent_branches`` is a sorted arc-id array, not a set; count the
    # ids outside vBr directly instead of materialising a difference set.
    new_branches = sum(
        1 for arc in candidate.parent_branches if arc not in valid_branches
    )
    score = weights.new_branches * new_branches
    score += static_score(candidate, weights)
    score -= weights.path_repetition * path_counts.get(candidate.path_signature, 0)
    return score
