"""The fuzzer's priority queue with cheap re-scoring.

After every newly emitted valid input the set of valid-covered branches
``vBr`` grows, which changes every queued candidate's score.  Re-running
queued inputs would be far too slow (§3.2), so candidates carry the
information needed to re-compute their score and the queue re-scores from
that stored metadata.

Implementation: a binary heap (scores negated for max-priority).  Pushes
and pops are O(log n); a re-score (which only happens when a new valid
input is emitted) recomputes every priority and re-heapifies in O(n).  When
the queue exceeds its capacity it is compacted to the best ``limit``
candidates.
"""

from __future__ import annotations

import heapq
from typing import Callable, FrozenSet, Iterator, List, Optional, Tuple

from repro.core.candidate import Candidate

ScoreFn = Callable[[Candidate], float]

#: Heap entries: (negated score, FIFO counter, candidate).
_Entry = Tuple[float, int, Candidate]


class CandidateQueue:
    """Max-priority queue of :class:`~repro.core.candidate.Candidate`."""

    def __init__(self, score_fn: ScoreFn, limit: int = 5_000) -> None:
        self._score_fn = score_fn
        self._limit = limit
        self._heap: List[_Entry] = []
        self._counter = 0  # FIFO tiebreak for equal scores

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Candidate]:
        for _, _, candidate in self._heap:
            yield candidate

    def push(self, candidate: Candidate) -> None:
        """Insert a candidate, scoring it with the current score function."""
        self._counter += 1
        heapq.heappush(
            self._heap, (-self._score_fn(candidate), self._counter, candidate)
        )
        if len(self._heap) > 2 * self._limit:
            self._compact()

    def pop(self) -> Optional[Candidate]:
        """Remove and return the highest-scored candidate (None if empty)."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def rescore(self, added_branches: Optional[FrozenSet[int]] = None) -> None:
        """Re-compute every score (Algorithm 1, Lines 40–43).

        ``added_branches`` are the arcs the last emitted input newly added
        to ``vBr``.  When given, each candidate's cached new-branch count
        (``Candidate.new_count``) is decremented by its overlap with the
        added arcs, so the score function never has to redo the
        ``parent_branches - vBr`` set difference — only candidates whose
        parents actually intersect the new arcs change.  The heap itself is
        still rebuilt (the path-repetition penalty can shift any entry), but
        each score is now O(1).
        """
        if added_branches:
            for _, _, candidate in self._heap:
                count = candidate.new_count
                if count is None or count == 0:
                    # None: never scored against any vBr, so there is
                    # nothing to decrement — the score function computes it
                    # fresh against the *current* vBr during the rebuild
                    # below.  0: cannot decrease further.  The two cases
                    # must stay distinct: decrementing a None would crash,
                    # and treating a 0 as unscored would resurrect branches
                    # the candidate no longer covers newly.
                    continue
                parent_branches = candidate.parent_branches
                if len(added_branches) < len(parent_branches):
                    overlap = sum(
                        1 for arc in added_branches if arc in parent_branches
                    )
                else:
                    overlap = sum(
                        1 for arc in parent_branches if arc in added_branches
                    )
                if overlap:
                    candidate.new_count = count - overlap
        self._heap = [
            (-self._score_fn(candidate), order, candidate)
            for _, order, candidate in self._heap
        ]
        heapq.heapify(self._heap)
        if len(self._heap) > self._limit:
            self._compact()

    def _compact(self) -> None:
        """Drop everything beyond the best ``limit`` candidates."""
        self._heap = heapq.nsmallest(self._limit, self._heap)
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------ #
    # Durable-campaign support (see repro.eval.checkpoint)
    # ------------------------------------------------------------------ #

    def dump_entries(self) -> Tuple[List[_Entry], int]:
        """The raw heap entries and FIFO counter, verbatim.

        Snapshots must capture the *stored* priorities, not re-derive them:
        a heap entry's priority is the score at its push/rescore time, and
        the path-repetition penalty drifts between re-scores, so re-scoring
        on restore would reorder pops and break the resumed-equals-
        uninterrupted contract.
        """
        return list(self._heap), self._counter

    def restore_entries(self, entries: List[_Entry], counter: int) -> None:
        """Replace the heap with previously dumped entries.

        ``entries`` must be a valid heap (any ``dump_entries`` output is);
        priorities and FIFO order numbers are restored verbatim so pop
        order, tie-breaks and future compactions are byte-identical to the
        campaign the snapshot was taken from.
        """
        self._heap = list(entries)
        self._counter = counter
