"""The fuzzer's priority queue with cheap re-scoring.

After every newly emitted valid input the set of valid-covered branches
``vBr`` grows, which changes every queued candidate's score.  Re-running
queued inputs would be far too slow (§3.2), so candidates carry the
information needed to re-compute their score and the queue re-scores from
that stored metadata.

Implementation: a binary heap (scores negated for max-priority).  Pushes
and pops are O(log n); a re-score (which only happens when a new valid
input is emitted) recomputes every priority and re-heapifies in O(n).  When
the queue exceeds its capacity it is compacted to the best ``limit``
candidates.

Re-scoring is vectorised over the interned arc ids: candidates store
their parent branches as sorted ``array('I')`` buffers
(:class:`~repro.core.candidate.Candidate`), the freshly added arcs become
a ``bytearray`` bitmap indexed by arc id, and each candidate's overlap
with the new arcs is ``sum(map(bitmap.__getitem__, branches))`` — a
single C-level pass per candidate, no per-arc set hashing.  The queue
tracks the largest arc id it has ever stored so the bitmap is sized once
per re-score, in O(1).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.core.candidate import Candidate

ScoreFn = Callable[[Candidate], float]

#: Heap entries: (negated score, FIFO counter, candidate).
_Entry = Tuple[float, int, Candidate]


class CandidateQueue:
    """Max-priority queue of :class:`~repro.core.candidate.Candidate`."""

    def __init__(self, score_fn: ScoreFn, limit: int = 5_000) -> None:
        self._score_fn = score_fn
        self._limit = limit
        self._heap: List[_Entry] = []
        self._counter = 0  # FIFO tiebreak for equal scores
        #: Largest interned arc id any stored candidate references — the
        #: bitmap bound for :meth:`rescore`.  Never shrinks on pop; an
        #: over-sized bitmap is only slack bytes.
        self._max_arc = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Candidate]:
        for _, _, candidate in self._heap:
            yield candidate

    def _note_arcs(self, candidate: Candidate) -> None:
        branches = candidate.parent_branches
        if branches and branches[-1] > self._max_arc:
            self._max_arc = branches[-1]

    def push(self, candidate: Candidate) -> None:
        """Insert a candidate, scoring it with the current score function."""
        self._counter += 1
        self._note_arcs(candidate)
        heapq.heappush(
            self._heap, (-self._score_fn(candidate), self._counter, candidate)
        )
        if len(self._heap) > 2 * self._limit:
            self._compact()

    def pop(self) -> Optional[Candidate]:
        """Remove and return the highest-scored candidate (None if empty)."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def peek_texts(self, count: int) -> List[str]:
        """Texts of (approximately) the next ``count`` candidates to pop.

        Used for speculative batched execution: the executor warms these
        while the current candidate's results are processed.  Exactness is
        deliberately traded for cost — the true top-k of a binary heap can
        sit anywhere in its first k levels, so this looks only at a
        bounded window of the backing array.  A wrong guess costs a wasted
        speculative execution, never a wrong campaign result (executions
        are a pure function of the text).
        """
        if count <= 0 or not self._heap:
            return []
        window = self._heap[: max(64, 4 * count)]
        return [entry[2].text for entry in heapq.nsmallest(count, window)]

    def rescore(self, added_branches: Optional[Iterable[int]] = None) -> None:
        """Re-compute every score (Algorithm 1, Lines 40–43).

        ``added_branches`` are the arcs the last emitted input newly added
        to ``vBr``.  When given, each candidate's cached new-branch count
        (``Candidate.new_count``) is decremented by its overlap with the
        added arcs, so the score function never has to redo the
        ``parent_branches - vBr`` set difference — the overlap is a bitmap
        count over the candidate's sorted arc array.  The heap itself is
        still rebuilt (the path-repetition penalty can shift any entry), but
        each score is now O(1).
        """
        if added_branches:
            # Bitmap of the added arcs, sized to cover both the additions
            # and every arc id stored in the queue.  Arcs can enter vBr
            # with ids older than anything queued (first covered by an
            # invalid run long ago), so the bound takes the max of both.
            limit = max(self._max_arc, max(added_branches)) + 1
            added_map = bytearray(limit)
            for arc in added_branches:
                added_map[arc] = 1
            lookup = added_map.__getitem__
            for _, _, candidate in self._heap:
                count = candidate.new_count
                if count is None or count == 0:
                    # None: never scored against any vBr, so there is
                    # nothing to decrement — the score function computes it
                    # fresh against the *current* vBr during the rebuild
                    # below.  0: cannot decrease further.  The two cases
                    # must stay distinct: decrementing a None would crash,
                    # and treating a 0 as unscored would resurrect branches
                    # the candidate no longer covers newly.
                    continue
                overlap = sum(map(lookup, candidate.parent_branches))
                if overlap:
                    candidate.new_count = count - overlap
        self._heap = [
            (-self._score_fn(candidate), order, candidate)
            for _, order, candidate in self._heap
        ]
        heapq.heapify(self._heap)
        if len(self._heap) > self._limit:
            self._compact()

    def _compact(self) -> None:
        """Drop everything beyond the best ``limit`` candidates."""
        self._heap = heapq.nsmallest(self._limit, self._heap)
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------ #
    # Durable-campaign support (see repro.eval.checkpoint)
    # ------------------------------------------------------------------ #

    def dump_entries(self) -> Tuple[List[_Entry], int]:
        """The raw heap entries and FIFO counter, verbatim.

        Snapshots must capture the *stored* priorities, not re-derive them:
        a heap entry's priority is the score at its push/rescore time, and
        the path-repetition penalty drifts between re-scores, so re-scoring
        on restore would reorder pops and break the resumed-equals-
        uninterrupted contract.
        """
        return list(self._heap), self._counter

    def restore_entries(self, entries: List[_Entry], counter: int) -> None:
        """Replace the heap with previously dumped entries.

        ``entries`` must be a valid heap (any ``dump_entries`` output is);
        priorities and FIFO order numbers are restored verbatim so pop
        order, tie-breaks and future compactions are byte-identical to the
        campaign the snapshot was taken from.
        """
        self._heap = list(entries)
        self._counter = counter
        for _, _, candidate in self._heap:
            self._note_arcs(candidate)
