"""The fuzzer's priority queue with cheap re-scoring.

After every newly emitted valid input the set of valid-covered branches
``vBr`` grows, which changes every queued candidate's score.  Re-running
queued inputs would be far too slow (§3.2), so candidates carry the
information needed to re-compute their score and the queue re-scores from
that stored metadata.

Implementation: a binary heap (scores negated for max-priority).  Pushes
and pops are O(log n); a re-score (which only happens when a new valid
input is emitted) recomputes every priority and re-heapifies in O(n).  When
the queue exceeds its capacity it is compacted to the best ``limit``
candidates.

Re-scoring is vectorised over the interned arc ids: candidates store
their parent branches as sorted ``array('I')`` buffers
(:class:`~repro.core.candidate.Candidate`), the freshly added arcs become
a ``bytearray`` bitmap indexed by arc id, and each candidate's overlap
with the new arcs is ``sum(map(bitmap.__getitem__, branches))`` — a
single C-level pass per candidate, no per-arc set hashing.  The queue
tracks the largest arc id it has ever stored so the bitmap is sized once
per re-score, in O(1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.candidate import Candidate

ScoreFn = Callable[[Candidate], float]

#: Heap entries: (negated score, FIFO counter, candidate).
_Entry = Tuple[float, int, Candidate]


@dataclass(frozen=True)
class CullStats:
    """What one :meth:`CandidateQueue.cull` pass removed and kept."""

    #: Entries whose text had already executed — pop would skip them.
    dead: int
    #: Later duplicates of an identical-metadata entry still queued.
    dominated: int
    #: Entries remaining in the queue after the pass.
    kept: int


def _dominance_key(candidate: Candidate) -> tuple:
    """Everything that determines a candidate's score, now and forever.

    Two entries sharing this key are the same work item: every rescore
    gives them equal scores, so the one with the earliest FIFO counter
    always pops first, executes, and turns the rest into dead entries
    (``text`` enters the seen set).  ``lineage`` is deliberately absent —
    it never feeds the score, and the earliest entry's lineage is the one
    an uncull'd campaign would have propagated anyway.
    """
    return (
        candidate.text,
        candidate.replacement,
        candidate.parents,
        candidate.avg_stack,
        candidate.path_signature,
        candidate.parent_branches.tobytes(),
    )


class CandidateQueue:
    """Max-priority queue of :class:`~repro.core.candidate.Candidate`."""

    def __init__(
        self,
        score_fn: ScoreFn,
        limit: int = 5_000,
        seen: Optional[AbstractSet[str]] = None,
    ) -> None:
        self._score_fn = score_fn
        self._limit = limit
        #: Texts already executed, shared (and mutated) by the owner.
        #: When provided, capacity compaction becomes hygiene-aware: it
        #: drops dead and dominated entries *before* truncating to the
        #: best ``limit``, so capacity is never wasted on entries that
        #: could not produce an execution anyway — and an explicit
        #: :meth:`cull` pass stays result-invariant even across lossy
        #: compactions (both the culled and unculled campaign compact to
        #: the same live winner set).  None keeps the raw truncation.
        self.seen = seen
        self._heap: List[_Entry] = []
        self._counter = 0  # FIFO tiebreak for equal scores
        #: Largest interned arc id any stored candidate references — the
        #: bitmap bound for :meth:`rescore`.  Never shrinks on pop; an
        #: over-sized bitmap is only slack bytes.
        self._max_arc = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __iter__(self) -> Iterator[Candidate]:
        for _, _, candidate in self._heap:
            yield candidate

    def _note_arcs(self, candidate: Candidate) -> None:
        branches = candidate.parent_branches
        if branches and branches[-1] > self._max_arc:
            self._max_arc = branches[-1]

    def push(self, candidate: Candidate) -> None:
        """Insert a candidate, scoring it with the current score function."""
        self._counter += 1
        self._note_arcs(candidate)
        heapq.heappush(
            self._heap, (-self._score_fn(candidate), self._counter, candidate)
        )
        if len(self._heap) > 2 * self._limit:
            self._compact(bound=2 * self._limit)

    def pop(self) -> Optional[Candidate]:
        """Remove and return the highest-scored candidate (None if empty)."""
        if not self._heap:
            return None
        return heapq.heappop(self._heap)[2]

    def peek_texts(self, count: int) -> List[str]:
        """Texts of (approximately) the next ``count`` candidates to pop.

        Used for speculative batched execution: the executor warms these
        while the current candidate's results are processed.  Exactness is
        deliberately traded for cost — the true top-k of a binary heap can
        sit anywhere in its first k levels, so this looks only at a
        bounded window of the backing array.  A wrong guess costs a wasted
        speculative execution, never a wrong campaign result (executions
        are a pure function of the text).
        """
        if count <= 0 or not self._heap:
            return []
        window = self._heap[: max(64, 4 * count)]
        return [entry[2].text for entry in heapq.nsmallest(count, window)]

    def rescore(self, added_branches: Optional[Iterable[int]] = None) -> None:
        """Re-compute every score (Algorithm 1, Lines 40–43).

        ``added_branches`` are the arcs the last emitted input newly added
        to ``vBr``.  When given, each candidate's cached new-branch count
        (``Candidate.new_count``) is decremented by its overlap with the
        added arcs, so the score function never has to redo the
        ``parent_branches - vBr`` set difference — the overlap is a bitmap
        count over the candidate's sorted arc array.  The heap itself is
        still rebuilt (the path-repetition penalty can shift any entry), but
        each score is now O(1).
        """
        if added_branches:
            # Bitmap of the added arcs, sized to cover both the additions
            # and every arc id stored in the queue.  Arcs can enter vBr
            # with ids older than anything queued (first covered by an
            # invalid run long ago), so the bound takes the max of both.
            limit = max(self._max_arc, max(added_branches)) + 1
            added_map = bytearray(limit)
            for arc in added_branches:
                added_map[arc] = 1
            lookup = added_map.__getitem__
            for _, _, candidate in self._heap:
                count = candidate.new_count
                if count is None or count == 0:
                    # None: never scored against any vBr, so there is
                    # nothing to decrement — the score function computes it
                    # fresh against the *current* vBr during the rebuild
                    # below.  0: cannot decrease further.  The two cases
                    # must stay distinct: decrementing a None would crash,
                    # and treating a 0 as unscored would resurrect branches
                    # the candidate no longer covers newly.
                    continue
                overlap = sum(map(lookup, candidate.parent_branches))
                if overlap:
                    candidate.new_count = count - overlap
        self._heap = [
            (-self._score_fn(candidate), order, candidate)
            for _, order, candidate in self._heap
        ]
        heapq.heapify(self._heap)
        if len(self._heap) > self._limit:
            self._compact()

    def rescore_full(self) -> None:
        """Invalidate every cached new-branch count and rescore from zero.

        The hybrid campaign's generation phase resets ``vBr`` so
        parser-directed search re-measures progress against the flooded
        corpus roots; incremental decrements are meaningless across such
        a reset, so every candidate is re-scored fresh against the new
        (empty) valid-branch set.
        """
        for _, _, candidate in self._heap:
            candidate.new_count = None
        self.rescore()

    def _compact(self, bound: Optional[int] = None) -> None:
        """Enforce capacity; ``bound`` is the trigger that fired (the
        rescore limit by default, ``2 * limit`` from :meth:`push`).

        Without a ``seen`` set: truncate to the best ``limit`` entries
        (the legacy lossy compaction).  With one, compaction is
        hygiene-first: dead and dominated entries go before anything
        live is sacrificed, and the lossy truncation to ``limit``
        happens only if the *live* winner set itself exceeds ``bound``.

        That live-exceeds-bound condition is what makes an explicit
        :meth:`cull` cadence result-invariant across compactions.  The
        culled and unculled campaign always share one live winner set;
        raw heap lengths (what the push/rescore triggers test) are at
        least the live count in either run, so whenever the live set
        outgrows ``bound`` both runs' triggers fire on the same push or
        rescore and both truncate the *same* live set to the same best
        ``limit``.  When only the dead-inflated raw length crossed the
        trigger, hygiene alone shrinks the heap and nothing live is
        lost — in either run.
        """
        bound = self._limit if bound is None else bound
        heap = self._heap
        if self.seen is not None:
            winners, dead, dominated = self._live_entries(self.seen)
            if dead or dominated:
                heap = winners
            if len(heap) > bound:
                heap = heapq.nsmallest(self._limit, heap)
        elif len(heap) > self._limit:
            heap = heapq.nsmallest(self._limit, heap)
        self._heap = heap
        heapq.heapify(self._heap)

    # ------------------------------------------------------------------ #
    # Queue hygiene (DESIGN.md §10)
    # ------------------------------------------------------------------ #

    def _live_entries(
        self, seen: AbstractSet[str]
    ) -> Tuple[List[_Entry], int, int]:
        """(winning entries, dead count, dominated count) — no mutation.

        *Dead* entries (text already executed) are exactly what
        :meth:`pop` callers skip; *dominated* entries are later pushes of
        an identical-metadata candidate (see :func:`_dominance_key`) —
        provably never the returned pop, because scores-from-metadata are
        equal after every rescore and monotonically staler in between, so
        the earliest FIFO counter wins every time.
        """
        dead = 0
        winners: Dict[tuple, _Entry] = {}
        for entry in self._heap:
            candidate = entry[2]
            if candidate.text in seen:
                dead += 1
                continue
            key = _dominance_key(candidate)
            kept = winners.get(key)
            if kept is None or entry[1] < kept[1]:
                winners[key] = entry
        dominated = len(self._heap) - dead - len(winners)
        return list(winners.values()), dead, dominated

    def live_depth(self, seen: AbstractSet[str]) -> int:
        """Candidates that could still produce an execution.

        The non-mutating count :meth:`cull` would leave behind — the
        queue's *frontier*.  ``FuzzingResult.queue_depth`` reports this
        instead of the raw heap length so campaigns with and without
        culling enabled finish with identical result fingerprints.
        """
        winners, _, _ = self._live_entries(seen)
        return len(winners)

    def cull(self, seen: AbstractSet[str]) -> CullStats:
        """Drop entries that can never become a returned pop.

        Removes *dead* entries (``text in seen`` — the pop loop discards
        them unexecuted) and *dominated* duplicates (identical-metadata
        entries beyond the earliest-pushed one, which always pops first
        and kills its siblings by executing their shared text).  Stored
        priorities, FIFO counters and the push counter are untouched, so
        the sequence of *returned* pops — and therefore the campaign
        result — is exactly what the uncull'd queue would have produced.
        This holds across capacity compactions too, because a queue with
        a ``seen`` set compacts hygiene-first (see :meth:`_compact`):
        lossy truncation only ever applies to the live winner set, which
        culling does not change.
        """
        winners, dead, dominated = self._live_entries(seen)
        if dead or dominated:
            self._heap = winners
            heapq.heapify(self._heap)
        return CullStats(dead=dead, dominated=dominated, kept=len(self._heap))

    # ------------------------------------------------------------------ #
    # Durable-campaign support (see repro.eval.checkpoint)
    # ------------------------------------------------------------------ #

    def dump_entries(self) -> Tuple[List[_Entry], int]:
        """The raw heap entries and FIFO counter, verbatim.

        Snapshots must capture the *stored* priorities, not re-derive them:
        a heap entry's priority is the score at its push/rescore time, and
        the path-repetition penalty drifts between re-scores, so re-scoring
        on restore would reorder pops and break the resumed-equals-
        uninterrupted contract.
        """
        return list(self._heap), self._counter

    def restore_entries(self, entries: List[_Entry], counter: int) -> None:
        """Replace the heap with previously dumped entries.

        ``entries`` must be a valid heap (any ``dump_entries`` output is);
        priorities and FIFO order numbers are restored verbatim so pop
        order, tie-breaks and future compactions are byte-identical to the
        campaign the snapshot was taken from.
        """
        self._heap = list(entries)
        self._counter = counter
        for _, _, candidate in self._heap:
            self._note_arcs(candidate)
