"""Queue entries of the parser-directed fuzzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

Arc = Tuple[str, int, int]


@dataclass
class Candidate:
    """One not-yet-executed input waiting in the priority queue.

    A candidate is created from the execution of its *parent* input by
    substituting one recorded comparison value (Algorithm 1 ``addInputs``).
    Everything the heuristic needs is stored here so re-scoring after a new
    valid input does **not** re-run anything (§3.2: "storing all relevant
    information to compute the heuristic along with the already executed
    input").

    Attributes:
        text: the input this candidate will execute.
        replacement: the comparison value substituted in (the ``c`` of
            ``heur``); empty for random seeds/appends.
        parents: length of the substitution chain from the initial input.
        parent_branches: branches covered by the parent's execution (up to
            the first comparison of its last compared character).
        avg_stack: the parent execution's ``avgStackSize()``.
        path_signature: identity of the parent's branch path, used for the
            path-novelty penalty.
    """

    text: str
    replacement: str = ""
    parents: int = 0
    parent_branches: FrozenSet[Arc] = field(default_factory=frozenset)
    avg_stack: float = 0.0
    path_signature: int = 0

    def __repr__(self) -> str:
        return (
            f"Candidate({self.text!r}, repl={self.replacement!r}, "
            f"parents={self.parents})"
        )
