"""Queue entries of the parser-directed fuzzer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional


@dataclass(slots=True)
class Candidate:
    """One not-yet-executed input waiting in the priority queue.

    A candidate is created from the execution of its *parent* input by
    substituting one recorded comparison value (Algorithm 1 ``addInputs``).
    Everything the heuristic needs is stored here so re-scoring after a new
    valid input does **not** re-run anything (§3.2: "storing all relevant
    information to compute the heuristic along with the already executed
    input").  ``slots=True``: campaigns hold thousands of candidates, and
    slot access is also slightly faster on the scoring path.

    Attributes:
        text: the input this candidate will execute.
        replacement: the comparison value substituted in (the ``c`` of
            ``heur``); empty for random seeds/appends.
        parents: length of the substitution chain from the initial input.
        parent_branches: branches (interned arc ids) covered by the parent's
            execution, up to the first comparison of its last compared
            character.
        avg_stack: the parent execution's ``avgStackSize()``.
        path_signature: identity of the parent's branch path, used for the
            path-novelty penalty.
        static_score: cached vBr-independent part of the heuristic score
            (input length, replacement, stack, parents terms); filled on
            first scoring.
        new_count: cached ``len(parent_branches - vBr)``.  Filled on first
            scoring and decremented incrementally as ``vBr`` grows, so a
            re-score never redoes the set difference.
        lineage: id of this candidate's node in the campaign's
            :class:`~repro.obs.lineage.LineageLog` — the provenance link
            that makes every emitted input replayable as a derivation
            chain.  Excluded from equality: two candidates for the same
            input are the same work item whichever parent queued them
            first.
    """

    text: str
    replacement: str = ""
    parents: int = 0
    parent_branches: FrozenSet[int] = field(default_factory=frozenset)
    avg_stack: float = 0.0
    path_signature: int = 0
    static_score: Optional[float] = field(default=None, compare=False)
    new_count: Optional[int] = field(default=None, compare=False)
    lineage: int = field(default=0, compare=False)

    def __repr__(self) -> str:
        return (
            f"Candidate({self.text!r}, repl={self.replacement!r}, "
            f"parents={self.parents})"
        )
