"""Queue entries of the parser-directed fuzzer."""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Empty parent-branch buffer shared by every seed/append candidate —
#: they are the common case and need no per-instance allocation.
_NO_BRANCHES = array("I")


@dataclass(slots=True)
class Candidate:
    """One not-yet-executed input waiting in the priority queue.

    A candidate is created from the execution of its *parent* input by
    substituting one recorded comparison value (Algorithm 1 ``addInputs``).
    Everything the heuristic needs is stored here so re-scoring after a new
    valid input does **not** re-run anything (§3.2: "storing all relevant
    information to compute the heuristic along with the already executed
    input").  ``slots=True``: campaigns hold thousands of candidates, and
    slot access is also slightly faster on the scoring path.

    Attributes:
        text: the input this candidate will execute.
        replacement: the comparison value substituted in (the ``c`` of
            ``heur``); empty for random seeds/appends.
        parents: length of the substitution chain from the initial input.
        parent_branches: branches (interned arc ids) covered by the parent's
            execution, up to the first comparison of its last compared
            character.  Stored as a *sorted* ``array('I')``: 4 bytes per
            arc instead of a frozenset's per-entry hash-table overhead,
            and the sorted layout makes queue re-scoring a vectorised
            bitmap count (see :meth:`CandidateQueue.rescore`) with the
            largest id available in O(1) at ``parent_branches[-1]``.  Any
            iterable of arc ids is accepted at construction and
            normalised.
        avg_stack: the parent execution's ``avgStackSize()``.
        path_signature: identity of the parent's branch path, used for the
            path-novelty penalty.
        static_score: cached vBr-independent part of the heuristic score
            (input length, replacement, stack, parents terms); filled on
            first scoring.
        new_count: cached ``len(parent_branches - vBr)``.  Filled on first
            scoring and decremented incrementally as ``vBr`` grows, so a
            re-score never redoes the set difference.
        lineage: id of this candidate's node in the campaign's
            :class:`~repro.obs.lineage.LineageLog` — the provenance link
            that makes every emitted input replayable as a derivation
            chain.  Excluded from equality: two candidates for the same
            input are the same work item whichever parent queued them
            first.
    """

    text: str
    replacement: str = ""
    parents: int = 0
    parent_branches: "array[int]" = field(default_factory=lambda: _NO_BRANCHES)
    avg_stack: float = 0.0
    path_signature: int = 0
    static_score: Optional[float] = field(default=None, compare=False)
    new_count: Optional[int] = field(default=None, compare=False)
    lineage: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        branches = self.parent_branches
        if type(branches) is not array:
            self.parent_branches = (
                array("I", sorted(branches)) if branches else _NO_BRANCHES
            )

    def branch_set(self) -> frozenset:
        """The parent branches as a frozenset, for set-algebra callers."""
        return frozenset(self.parent_branches)

    def __repr__(self) -> str:
        return (
            f"Candidate({self.text!r}, repl={self.replacement!r}, "
            f"parents={self.parents})"
        )


def normalize_branches(branches: Iterable[int]) -> "array[int]":
    """An iterable of interned arc ids as the canonical sorted array."""
    if type(branches) is array:
        return branches
    return array("I", sorted(branches)) if branches else _NO_BRANCHES
