"""The paper's primary contribution: the parser-directed fuzzer (pFuzzer).

:class:`~repro.core.fuzzer.PFuzzer` implements Algorithm 1: run a candidate,
derive substitutions from the comparisons made against the last compared
input index, push them into a priority queue scored by the coverage/length/
stack-size heuristic of §3.1, and emit every valid input that covers new
branches.
"""

from repro.core.candidate import Candidate
from repro.core.config import FuzzerConfig, HeuristicWeights
from repro.core.fuzzer import FuzzingResult, PFuzzer
from repro.core.heuristic import heuristic_score
from repro.core.queue import CandidateQueue
from repro.core.substitute import Substitution, substitutions_for

__all__ = [
    "PFuzzer",
    "FuzzingResult",
    "FuzzerConfig",
    "HeuristicWeights",
    "Candidate",
    "CandidateQueue",
    "heuristic_score",
    "Substitution",
    "substitutions_for",
]
