"""The parser-directed fuzzing loop (paper Algorithm 1).

The loop alternates two executions per iteration, as in the paper:

1. the candidate itself — a substitution never *appends*, so this run
   checks whether the substitution completed a valid input;
2. the candidate plus one random character — because "not all parsers use
   an EOF check", the random extension probes whether the parser wanted
   more input, and its comparison trace is what substitutions are derived
   from when both runs fail.

Every valid input that covers new branches is emitted, the valid-coverage
set ``vBr`` grows, and the whole queue is re-scored without re-running
anything.

Branches are interned arc ids (small ints, see
:mod:`repro.runtime.arcs`), so ``vBr`` and the heuristic's set differences
operate on int sets.  Scoring uses the caches on
:class:`~repro.core.candidate.Candidate` (``static_score``, ``new_count``)
plus a bytearray bitmap of ``vBr`` indexed by arc id, making a queue
re-score O(queue) with a vectorised membership count per candidate instead
of a set difference per candidate.

Execution is pluggable (``config.executor``): the default ``"inline"``
engine calls :func:`~repro.runtime.harness.run_subject` in-process; the
``"pooled"`` engine routes candidates through a persistent forked-worker
executor (:mod:`repro.runtime.executor`) and — with ``config.batch_size``
> 1 — speculatively submits the queue's likely next pops in the same
round-trip.  Executions are a pure function of the input text, and all
campaign bookkeeping (counters, path counts, lineage, RNG) happens here at
consume time, so every engine produces byte-identical campaign results.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.candidate import Candidate, normalize_branches
from repro.core.config import FuzzerConfig
from repro.core.heuristic import static_score
from repro.core.queue import CandidateQueue
from repro.core.substitute import substitutions_for
from repro.obs.lineage import LineageLog
from repro.obs.trace import NULL_RECORDER, JsonlTraceRecorder, PhaseTimer, TraceRecorder
from repro.runtime.arcs import arc_table_for
from repro.runtime.executor import EXECUTOR_MODES, ISOLATION_MODES
from repro.runtime.harness import ExitStatus, RunResult, run_subject
from repro.subjects.base import Subject

#: Fault-injection hook for the durability test suite: when set, the
#: process SIGKILLs itself as soon as the execution counter reaches this
#: value — an uncatchable mid-campaign death, exactly what checkpoint
#: resume must survive.  Set via ``repro.eval.parallel``'s ``kill-at``
#: fault mode; never set in production.
_TEST_KILL_AT: Optional[int] = None


@dataclass
class FuzzingResult:
    """Outcome of one fuzzing campaign.

    Attributes:
        valid_inputs: inputs emitted because they were accepted *and*
            covered new branches, in discovery order (the paper's printed
            outputs).
        all_valid: every accepted input encountered, including ones without
            new coverage.
        executions: number of subject executions performed.
        valid_branches: union of branches (interned arc ids) covered by
            emitted valid inputs (the final ``vBr``).
        rejected: number of rejected executions.
        hangs: number of step-budget exhaustions.
        crashes: number of CRASH executions (unexpected subject
            exceptions, classified by the harness) — counted in every
            campaign, hunting or not.
        crash_inputs: with ``config.hunt_crashes``, the first input to
            reach each distinct failure site, in discovery order
            (deduplicated by failure-site signature; empty otherwise).
        crash_signatures: ``(exception_type, filename, line)`` failure
            sites, aligned with ``crash_inputs``.
        crash_path_signatures: stable path signature of each recorded
            crashing execution, aligned with ``crash_inputs`` (persisted
            alongside the corpus, like ``valid_signatures``).
        emit_log: (execution number, input) pairs for each emitted input.
        wall_time: campaign duration in seconds.
        queue_depth: the queue's *live frontier* when the budget ran out —
            candidates that could still produce an execution (dead and
            dominated entries excluded; see
            :meth:`repro.core.queue.CandidateQueue.live_depth`).  Cull-
            invariant by construction: campaigns with and without
            ``cull_every`` report the same depth.
        phase_times: seconds spent per campaign phase — ``"execute"``
            (subject runs under instrumentation), ``"rescore"`` (queue
            re-scoring after emits), ``"substitute"`` (deriving and
            queueing substitution candidates) and ``"checkpoint"``
            (writing durable snapshots, when enabled).
        valid_signatures: stable path signature of each emitted input's
            execution, aligned with ``valid_inputs`` (persisted alongside
            the corpus; see :mod:`repro.eval.corpus_store`).
        valid_lineage: lineage node id of each emitted input, aligned
            with ``valid_inputs`` — the entry points into ``lineage`` for
            replaying an input's derivation chain.
        lineage: the campaign's full candidate lineage tree (see
            :mod:`repro.obs.lineage`); always recorded, tracing or not.
        resumes: how many times this campaign was restored from a
            checkpoint (0 for an uninterrupted run).
        preempted: True when the run stopped at an iteration boundary
            because the ``should_preempt`` hook asked it to, with budget
            still left — the campaign is paused, not finished, and a
            resume continues it exactly where an uninterrupted run would
            have been.
    """

    valid_inputs: List[str] = field(default_factory=list)
    all_valid: List[str] = field(default_factory=list)
    executions: int = 0
    valid_branches: FrozenSet[int] = frozenset()
    rejected: int = 0
    hangs: int = 0
    crashes: int = 0
    crash_inputs: List[str] = field(default_factory=list)
    crash_signatures: List[tuple] = field(default_factory=list)
    crash_path_signatures: List[int] = field(default_factory=list)
    emit_log: List[Tuple[int, str]] = field(default_factory=list)
    wall_time: float = 0.0
    queue_depth: int = 0
    phase_times: Dict[str, float] = field(default_factory=dict)
    valid_signatures: List[int] = field(default_factory=list)
    resumes: int = 0
    preempted: bool = False
    valid_lineage: List[int] = field(default_factory=list)
    lineage: Optional[LineageLog] = None


class PFuzzer:
    """Parser-directed fuzzer for one subject.

    Args:
        subject: the program under test.
        config: campaign configuration.
        on_emit: optional callback invoked as ``on_emit(executions, text)``
            for every emitted valid input — the streaming equivalent of the
            paper's ``print(input)`` (Algorithm 1, Line 38).
        should_preempt: optional callback polled once per loop iteration,
            at the iteration boundary (no candidate in flight), as
            ``should_preempt(run_executions, total_executions)``.  Returning
            True stops the run there: with ``checkpoint_dir`` set the final
            snapshot captures the paused state and a later ``resume``
            continues byte-identically — the mechanism the campaign
            service's time-slicing scheduler is built on.
        tracer: optional :class:`~repro.obs.trace.TraceRecorder` receiving
            the campaign's structured events.  When None, a
            :class:`~repro.obs.trace.JsonlTraceRecorder` is created for
            ``config.trace_path`` (and closed when :meth:`run` returns),
            or the null recorder if no path is configured.  Tracing never
            changes the campaign result: the lineage tree and its ids are
            maintained identically either way.
    """

    def __init__(
        self,
        subject: Subject,
        config: Optional[FuzzerConfig] = None,
        on_emit=None,
        should_preempt=None,
        tracer: Optional[TraceRecorder] = None,
    ) -> None:
        self.subject = subject
        self.config = config or FuzzerConfig()
        self.on_emit = on_emit
        self.should_preempt = should_preempt
        self._owns_trace = tracer is None and self.config.trace_path is not None
        if tracer is not None:
            self._trace = tracer
        elif self._owns_trace:
            self._trace = JsonlTraceRecorder(self.config.trace_path)
        else:
            self._trace = NULL_RECORDER
        #: Guard for event *construction* on the hot path: with tracing
        #: disabled every emit site costs exactly this flag check.
        self._trace_on = self._trace.enabled
        self._lineage = LineageLog()
        self._rng = random.Random(self.config.seed)
        self._valid_branches: Set[int] = set()
        #: Cached ``frozenset(vBr)``, grown *incrementally* (unioned with
        #: each emit's added arcs) — never rebuilt from scratch.
        self._vbr_frozen: FrozenSet[int] = frozenset()
        #: Bitmap of vBr indexed by interned arc id, grown on demand —
        #: what first-time candidate scoring counts against (a C-level
        #: ``sum(map(...))`` over the candidate's sorted arc array).
        self._vbr_map = bytearray()
        self._path_counts: Dict[int, int] = {}
        self._seen: Set[str] = set()
        self._all_valid_seen: Set[str] = set()
        #: Failure-site signatures already recorded (crash-hunting dedupe).
        self._crash_seen: Set[tuple] = set()
        self._result = FuzzingResult()
        self._queue = CandidateQueue(
            self._score, limit=self.config.queue_limit, seen=self._seen
        )
        self._timer = PhaseTimer(
            self._trace,
            totals={
                "execute": 0.0,
                "rescore": 0.0,
                "substitute": 0.0,
                "checkpoint": 0.0,
            },
        )
        #: Wall seconds consumed by previous runs of a resumed campaign.
        self._wall_consumed = 0.0
        self._run_started: Optional[float] = None
        self._last_checkpoint = 0
        if self.config.shard_count < 1 or not (
            0 <= self.config.shard_id < self.config.shard_count
        ):
            raise ValueError(
                f"invalid shard {self.config.shard_id}/"
                f"{self.config.shard_count}"
            )
        if self.config.shard_rotate_every < 1:
            raise ValueError("shard_rotate_every must be positive")
        if self.config.executor not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor {self.config.executor!r}; "
                f"expected one of {EXECUTOR_MODES}"
            )
        if self.config.executor_isolation not in ISOLATION_MODES:
            raise ValueError(
                f"unknown executor isolation "
                f"{self.config.executor_isolation!r}; "
                f"expected one of {ISOLATION_MODES}"
            )
        if self.config.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.config.executor_workers < 1:
            raise ValueError("executor_workers must be positive")
        if self.config.cull_every is not None and self.config.cull_every < 1:
            raise ValueError("cull_every must be positive")
        self._last_cull = 0
        #: The pooled execution engine, created for the duration of
        #: :meth:`run`; None means the inline fast path.
        self._executor = None
        self._syncer = None
        if self.config.sync_store is not None:
            from repro.eval.corpus_store import CorpusStore
            from repro.eval.sync import CorpusSyncer

            self._syncer = CorpusSyncer(
                CorpusStore(self.config.sync_store),
                subject=self.subject.name,
                tool="pfuzzer",
                seed=self.config.seed if self.config.seed is not None else 0,
            )
        self._sync_every = (
            self.config.sync_every
            if self.config.sync_every is not None
            else self.config.checkpoint_every
        )
        self._last_sync = 0
        #: The hybrid explore→learn→generate engine (None outside hybrid
        #: mode) and the arcs folded out of ``vBr`` by generation-phase
        #: resets — unioned back into the final ``result.valid_branches``
        #: so total decoded coverage stays monotone across resets.
        self._hybrid = None
        self._hybrid_branches: Set[int] = set()
        if self.config.hybrid:
            # Imported lazily, like the checkpoint machinery: the core
            # layer only depends on repro.hybrid when the mode is on.
            from repro.hybrid.campaign import HybridConfig, HybridEngine

            self._hybrid = HybridEngine(
                HybridConfig.from_fuzzer(self.config), self.config.seed
            )

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #

    def _score(self, candidate: Candidate) -> float:
        """O(1) per candidate once the caches are warm.

        Equivalent to :func:`repro.core.heuristic.heuristic_score`: the
        vBr-independent terms live in ``candidate.static_score``, the
        new-branches count in ``candidate.new_count`` (kept current by
        :meth:`CandidateQueue.rescore`), and only the path-repetition
        penalty is looked up fresh.
        """
        weights = self.config.weights
        new_count = candidate.new_count
        if new_count is None:
            branches = candidate.parent_branches
            if branches:
                vbr_map = self._vbr_map
                if branches[-1] >= len(vbr_map):
                    # The sorted array's last entry is its max arc id;
                    # grow the bitmap once instead of bounds-checking
                    # every lookup.
                    vbr_map.extend(bytes(branches[-1] + 1 - len(vbr_map)))
                new_count = len(branches) - sum(
                    map(vbr_map.__getitem__, branches)
                )
            else:
                new_count = 0
            candidate.new_count = new_count
        cached_static = candidate.static_score
        if cached_static is None:
            cached_static = static_score(candidate, weights)
            candidate.static_score = cached_static
        score = weights.new_branches * new_count + cached_static
        score -= weights.path_repetition * self._path_counts.get(
            candidate.path_signature, 0
        )
        return score

    # ------------------------------------------------------------------ #
    # Shard partition (DESIGN.md §8)
    # ------------------------------------------------------------------ #

    def _shard_epoch(self) -> int:
        """Rotation epoch: advances every ``shard_rotate_every`` executions
        so the ownership mapping drifts and no candidate is permanently
        orphaned on a shard that never schedules it."""
        return self._result.executions // self.config.shard_rotate_every

    def _owns(self, text: str) -> bool:
        """Does this shard own candidate ``text`` in the current epoch?

        Ownership is ``(blake2b(text) + epoch) % shard_count == shard_id``
        — stable across processes and PYTHONHASHSEED values, and a pure
        function of (text, executions), so a resumed shard partitions
        exactly as the uninterrupted run did.
        """
        if self.config.shard_count == 1:
            return True
        digest = hashlib.blake2b(
            text.encode("utf-8", errors="surrogatepass"), digest_size=8
        ).digest()
        bucket = int.from_bytes(digest, "big") + self._shard_epoch()
        return bucket % self.config.shard_count == self.config.shard_id

    def _append_pool(self) -> str:
        """This shard's slice of the character pool in the current epoch.

        The slice rotates with the epoch; if it is empty (more shards than
        pool characters) the full pool is the fallback, keeping restarts
        and appends always possible.
        """
        if self.config.shard_count == 1:
            return self.config.character_pool
        epoch = self._shard_epoch()
        shard_count = self.config.shard_count
        shard_id = self.config.shard_id
        pool = "".join(
            char
            for index, char in enumerate(self.config.character_pool)
            if (index + epoch) % shard_count == shard_id
        )
        return pool or self.config.character_pool

    # ------------------------------------------------------------------ #
    # Execution bookkeeping
    # ------------------------------------------------------------------ #

    def _execute(self, text: str, lineage: int) -> RunResult:
        self._seen.add(text)
        started = self._timer.start()
        if self._executor is None:
            result = run_subject(
                self.subject,
                text,
                trace_coverage=self.config.trace_coverage,
                coverage_backend=self.config.coverage_backend,
            )
        else:
            # Pooled engine: the result may already be streaming in from a
            # speculative prefetch; otherwise this is one round-trip.  All
            # bookkeeping below happens here at consume time regardless of
            # when (or on which worker) the execution actually ran, which
            # is what keeps every engine byte-identical.
            result = self._executor.execute(text)
        self._timer.stop("execute", started)
        self._result.executions += 1
        if _TEST_KILL_AT is not None and self._result.executions >= _TEST_KILL_AT:
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover - dies
        signature = result.path_signature()
        self._path_counts[signature] = self._path_counts.get(signature, 0) + 1
        if result.status is ExitStatus.REJECTED:
            self._result.rejected += 1
        elif result.status is ExitStatus.HANG:
            self._result.hangs += 1
        elif result.status is ExitStatus.CRASH:
            self._result.crashes += 1
            self._record_crash(result, signature, lineage)
        elif result.valid and text not in self._all_valid_seen:
            self._all_valid_seen.add(text)
            self._result.all_valid.append(text)
        if self._trace_on:
            self._trace.emit(
                "candidate_executed",
                lineage=lineage,
                executions=self._result.executions,
                status=result.status.name.lower(),
            )
        return result

    def _record_crash(
        self, result: RunResult, path_signature: int, lineage: int
    ) -> None:
        """Crash-hunting bookkeeping for one CRASH execution.

        Only the *first* input to reach each failure site is recorded
        (the site signature is the dedupe key, "Fuzzing with Fast
        Failure Feedback" style); without ``config.hunt_crashes`` the
        execution is counted but nothing is recorded.
        """
        if not self.config.hunt_crashes:
            return
        signature = result.crash_signature
        if signature is None or signature in self._crash_seen:
            return
        self._crash_seen.add(signature)
        self._result.crash_inputs.append(result.text)
        self._result.crash_signatures.append(signature)
        self._result.crash_path_signatures.append(path_signature)
        if self._trace_on:
            self._trace.emit(
                "crash_found",
                lineage=lineage,
                executions=self._result.executions,
                text=result.text,
                signature=list(signature),
            )

    def _absorb_valid_branches(self, added: FrozenSet[int]) -> None:
        """Grow vBr with ``added`` arcs across all three representations.

        The frozenset cache is unioned incrementally — rebuilding it from
        the full set on every coverage-growing input was O(|vBr|) per emit
        — and the scoring bitmap flips just the added bits.
        """
        self._valid_branches |= added
        self._vbr_frozen |= added
        vbr_map = self._vbr_map
        top = max(added)
        if top >= len(vbr_map):
            vbr_map.extend(bytes(top + 1 - len(vbr_map)))
        for arc in added:
            vbr_map[arc] = 1

    def _is_valid_new(self, result: RunResult) -> bool:
        """Algorithm 1 ``runCheck``: exit 0 and new branch coverage."""
        if not result.valid:
            return False
        if not self.config.trace_coverage:
            # Without coverage the gate degrades to "first time seen":
            # _execute deduplicates inputs, so any valid result here is new.
            return True
        return bool(result.branches - self._valid_branches)

    # ------------------------------------------------------------------ #
    # Algorithm 1 procedures
    # ------------------------------------------------------------------ #

    def _handle_valid(self, result: RunResult, parents: int, lineage: int) -> None:
        """``validInp``: emit, grow vBr, re-score the queue, keep extending."""
        self._result.valid_inputs.append(result.text)
        self._result.valid_signatures.append(result.path_signature())
        self._result.valid_lineage.append(lineage)
        self._result.emit_log.append((self._result.executions, result.text))
        if self._trace_on:
            self._trace.emit(
                "input_emitted",
                lineage=lineage,
                executions=self._result.executions,
                text=result.text,
                signature=result.path_signature(),
            )
        if self.on_emit is not None:
            self.on_emit(self._result.executions, result.text)
        added = result.branches - self._valid_branches
        if added:
            self._absorb_valid_branches(added)
        started = self._timer.start()
        self._queue.rescore(added)
        self._timer.stop("rescore", started)
        self._add_candidates(result, parents, lineage)

    def _add_candidates(self, result: RunResult, parents: int, lineage: int) -> None:
        """``addInputs``: one queue entry per satisfiable comparison.

        ``lineage`` is the executed input's lineage node: every queued
        substitution becomes its child, carrying the comparison that
        caused the splice.
        """
        started = self._timer.start()
        # Normalise to the canonical sorted arc array once; every queued
        # sibling shares the same (immutable-by-convention) buffer.
        parent_branches = normalize_branches(result.branches_for_heuristic())
        avg_stack = result.average_stack_size()
        signature = result.path_signature()
        trace_on = self._trace_on
        for substitution in substitutions_for(result):
            if substitution.text in self._seen:
                if trace_on:
                    self._trace.emit(
                        "candidate_rejected",
                        reason="duplicate",
                        text=substitution.text,
                    )
                continue
            if not self._owns(substitution.text):
                # Another shard of the group owns this candidate in the
                # current epoch; rotation re-offers it here later, and the
                # owning shard's emission arrives via corpus sync.
                if trace_on:
                    self._trace.emit(
                        "candidate_rejected",
                        reason="other-shard",
                        text=substitution.text,
                    )
                continue
            if len(substitution.text) > self.config.max_input_length:
                if trace_on:
                    self._trace.emit(
                        "candidate_rejected",
                        reason="too-long",
                        text=substitution.text,
                    )
                continue
            node = self._lineage.new_node(
                lineage,
                "substitute",
                substitution.text,
                replacement=substitution.replacement,
                at_index=substitution.at_index,
                cmp_kind=substitution.kind,
            )
            if trace_on:
                self._trace.emit(
                    "candidate_scheduled",
                    lineage=node,
                    parent=lineage,
                    op="substitute",
                    text=substitution.text,
                    replacement=substitution.replacement,
                )
                self._trace.emit(
                    "substitution_applied",
                    lineage=node,
                    parent=lineage,
                    at_index=substitution.at_index,
                    replacement=substitution.replacement,
                    cmp_kind=substitution.kind,
                    cmp_expected=substitution.expected,
                )
            self._queue.push(
                Candidate(
                    text=substitution.text,
                    replacement=substitution.replacement,
                    parents=parents + 1,
                    parent_branches=parent_branches,
                    avg_stack=avg_stack,
                    path_signature=signature,
                    lineage=node,
                )
            )
        self._timer.stop("substitute", started)

    def _random_char(self) -> str:
        return self._rng.choice(self._append_pool())

    def _seed_candidate(self, text: str) -> Candidate:
        """A root candidate with a fresh ``"seed"`` lineage node."""
        node = self._lineage.new_node(None, "seed", text, replacement=text)
        if self._trace_on:
            self._trace.emit(
                "candidate_scheduled",
                lineage=node,
                parent=None,
                op="seed",
                text=text,
            )
        return Candidate(text, lineage=node)

    def _next_candidate(self) -> Optional[Candidate]:
        while True:
            candidate = self._queue.pop()
            if candidate is None:
                return self._restart_candidate()
            if candidate.text not in self._seen:
                return candidate

    def _restart_candidate(self) -> Optional[Candidate]:
        """Fresh random seed when the queue runs dry."""
        for _ in range(64):
            text = self._random_char()
            if text not in self._seen:
                return self._seed_candidate(text)
        # 64 draws can all collide with already-seen characters while the
        # pool still holds unseen ones; returning None here used to end the
        # campaign with budget left.  Fall back to a deterministic pool
        # scan so the campaign only stops once the pool is truly exhausted.
        for char in self.config.character_pool:
            if char not in self._seen:
                return self._seed_candidate(char)
        return None

    # ------------------------------------------------------------------ #
    # Corpus sync (see repro.eval.sync)
    # ------------------------------------------------------------------ #

    def _sync_point(self, pull: bool) -> None:
        """Exchange valid inputs with the shared store.

        Push first (own fresh emissions, one ``O_APPEND`` write), then —
        for cadence syncs — pull other shards' records, queueing each
        unseen input as a ``"sync"``-lineage root candidate.  Imports are
        sorted by input text before queueing, so lineage ids and queue
        order are independent of how other shards' pushes interleaved in
        the store.
        """
        result = self._result
        pushed = self._syncer.push(
            result.valid_inputs, result.valid_signatures
        )
        imported = 0
        if pull:
            for record in self._syncer.pull():
                if record.input in self._seen:
                    continue
                if len(record.input) > self.config.max_input_length:
                    continue
                node = self._lineage.new_node(
                    None,
                    "sync",
                    record.input,
                    replacement=record.input,
                    cmp_kind=record.tool,
                )
                if self._trace_on:
                    self._trace.emit(
                        "candidate_scheduled",
                        lineage=node,
                        parent=None,
                        op="sync",
                        text=record.input,
                    )
                self._queue.push(Candidate(record.input, lineage=node))
                imported += 1
            self._last_sync = result.executions
        if self._trace_on:
            self._trace.emit(
                "corpus_sync",
                executions=result.executions,
                pushed=pushed,
                imported=imported,
            )

    def _maybe_sync(self) -> None:
        """Cadence sync at the iteration boundary.

        The trigger is a pure function of the executions counter (never
        wall time), so sync points land at identical executions across
        reruns and across kill+resume — the determinism invariant the
        cross-shard harness checks.
        """
        if self._syncer is None:
            return
        if self._result.executions - self._last_sync < self._sync_every:
            return
        self._sync_point(pull=True)

    # ------------------------------------------------------------------ #
    # Queue hygiene (see repro.core.queue.CandidateQueue.cull)
    # ------------------------------------------------------------------ #

    def _maybe_cull(self) -> None:
        """Cadence cull at the iteration boundary.

        Same discipline as :meth:`_maybe_sync`: the trigger is a pure
        function of the executions counter.  Cull timing is nevertheless
        result-invariant — culling only removes entries pop would have
        discarded anyway — so ``_last_cull`` need not survive snapshots;
        a resumed campaign just restarts its cadence from the resume
        point and still finishes fingerprint-identical.
        """
        if self.config.cull_every is None:
            return
        if self._result.executions - self._last_cull < self.config.cull_every:
            return
        started = self._timer.start()
        stats = self._queue.cull(self._seen)
        self._last_cull = self._result.executions
        self._timer.stop("rescore", started)
        if self._trace_on:
            self._trace.emit(
                "queue_cull",
                executions=self._result.executions,
                dead=stats.dead,
                dominated=stats.dominated,
                kept=stats.kept,
            )

    # ------------------------------------------------------------------ #
    # Hybrid campaigns (see repro.hybrid)
    # ------------------------------------------------------------------ #

    def _maybe_hybrid(self) -> None:
        """Cadence hook of the hybrid alternation, iteration-boundary only.

        Same discipline as :meth:`_maybe_sync`: the engine observes the
        execution/emission deltas and the phase trigger is a pure
        function of campaign counters and snapshot state — never wall
        time — so hybrid phases land at identical executions across
        reruns and across kill+resume.  Runs *before* the sync/cull/
        checkpoint hooks: a phase changes the campaign (executions,
        corpus, vBr), and the other cadences must see its effects the
        same way in interrupted and uninterrupted runs.
        """
        engine = self._hybrid
        if engine is None:
            return
        result = self._result
        engine.observe_campaign(result.executions, len(result.valid_inputs))
        if not engine.plateaued(result.executions, len(self._all_valid_seen)):
            return
        self._hybrid_phase(engine)

    def _hybrid_phase(self, engine) -> None:
        """One learn→generate phase: mine, reset ``vBr``, flood.

        Mining replays each corpus input through the subject, so those
        runs are charged to the execution budget like any other; the
        charge happens whether or not budget remains, and the flood
        checks the budget per candidate (generated texts an exhausted
        budget cannot run are simply dropped — they were never queued,
        so the end-of-run state matches what a resume reproduces).
        """
        from repro.hybrid.campaign import enrich_grammar, lineage_keywords
        from repro.miner.mine import mine_grammar

        result = self._result
        phase = engine.phase + 1
        corpus = sorted(self._all_valid_seen, key=lambda t: (len(t), t))
        corpus = corpus[-engine.config.mine_corpus :]
        started = self._timer.start()
        grammar = mine_grammar(self.subject, corpus)
        result.executions += len(corpus)
        keywords = lineage_keywords(self._lineage, result.valid_lineage)
        grammar = enrich_grammar(grammar, keywords)
        engine.learn(grammar, keywords)
        self._timer.stop("mine", started)
        if self._trace_on:
            self._trace.emit(
                "grammar_mined",
                executions=result.executions,
                phase=phase,
                corpus=len(corpus),
                rules=len(grammar.rules),
                keywords=len(keywords),
            )
        # Reset vBr so parser-directed search re-measures progress
        # against the flooded corpus: fold the current set into the
        # cumulative union, clear all three representations, and rescore
        # the queue from zero (incremental decrements are meaningless
        # across a reset).
        self._hybrid_branches |= self._valid_branches
        self._valid_branches = set()
        self._vbr_frozen = frozenset()
        self._vbr_map = bytearray()
        started = self._timer.start()
        self._queue.rescore_full()
        self._timer.stop("rescore", started)
        injected = 0
        valid = 0
        for text in engine.flood(
            self.config.gen_batch, self._seen, self.config.max_input_length
        ):
            if not self._budget_left():
                break
            node = self._lineage.new_node(
                None, "gen", text, replacement=text, cmp_kind=f"phase-{phase}"
            )
            if self._trace_on:
                self._trace.emit(
                    "candidate_scheduled",
                    lineage=node,
                    parent=None,
                    op="gen",
                    text=text,
                )
            run = self._execute(text, node)
            injected += 1
            if self._is_valid_new(run):
                valid += 1
                self._handle_valid(run, parents=0, lineage=node)
            else:
                self._add_candidates(run, parents=0, lineage=node)
        if self._trace_on:
            self._trace.emit(
                "gen_phase",
                executions=result.executions,
                phase=phase,
                injected=injected,
                valid=valid,
            )
        engine.finish_phase(result.executions, len(result.valid_inputs))

    # ------------------------------------------------------------------ #
    # Durable snapshots (see repro.eval.checkpoint)
    # ------------------------------------------------------------------ #

    def _config_fingerprint(self) -> dict:
        """Everything a snapshot's config must match to be resumable.

        ``max_executions`` is deliberately excluded: resuming with a larger
        budget is how a finished campaign is extended.  The executor
        fields (``executor``/``batch_size``/``executor_workers``/
        ``executor_isolation``) are excluded like ``trace_path``: they are
        environmental — every engine produces byte-identical campaigns,
        so a resume may switch engines freely (the equivalence harness
        asserts exactly this).
        """
        config = self.config
        fingerprint = {
            "subject": type(self.subject).__name__,
            "seed": config.seed,
            "trace_coverage": config.trace_coverage,
            "coverage_backend": config.coverage_backend,
            "max_input_length": config.max_input_length,
            "queue_limit": config.queue_limit,
            "character_pool": config.character_pool,
            "max_valid_inputs": config.max_valid_inputs,
            "initial_inputs": list(config.initial_inputs),
            "weights": asdict(config.weights),
            # Shard membership and cadence shape the campaign; the store
            # path (like checkpoint_dir/trace_path) is environmental and
            # deliberately excluded.
            "shard_id": config.shard_id,
            "shard_count": config.shard_count,
            "shard_rotate_every": config.shard_rotate_every,
            "sync_every": self._sync_every if self._syncer else None,
        }
        if config.hybrid:
            # Hybrid mode changes the campaign result (phases mine,
            # reset vBr and flood), so it and its cadence knobs must
            # match on resume.  Keyed only when on: non-hybrid
            # fingerprints stay byte-identical to pre-hybrid snapshots,
            # and a hybrid snapshot can never restore into a non-hybrid
            # campaign (or vice versa) — the key sets differ.
            fingerprint["hybrid"] = True
            fingerprint["mine_after"] = config.mine_after
            fingerprint["gen_batch"] = config.gen_batch
            fingerprint["gen_depth"] = config.gen_depth
        if config.hunt_crashes:
            # Hunting changes what the campaign *records* (crash findings
            # join the result), so it must match on resume.  Keyed only
            # when on, same discipline as ``hybrid``: crash-free configs
            # keep their pre-hunting fingerprints.
            fingerprint["hunt_crashes"] = True
        return fingerprint

    @staticmethod
    def _encode_candidate(candidate: Candidate, mapping: Dict[int, int]) -> dict:
        return {
            "text": candidate.text,
            "replacement": candidate.replacement,
            "parents": candidate.parents,
            "parent_branches": sorted(
                mapping[arc] for arc in candidate.parent_branches
            ),
            "avg_stack": candidate.avg_stack,
            "path_signature": candidate.path_signature,
            "static_score": candidate.static_score,
            "new_count": candidate.new_count,
            "lineage": candidate.lineage,
        }

    @staticmethod
    def _decode_candidate(record: dict, unpacker) -> Candidate:
        return Candidate(
            text=record["text"],
            replacement=record["replacement"],
            parents=record["parents"],
            parent_branches=unpacker.ids(record["parent_branches"]),
            avg_stack=record["avg_stack"],
            path_signature=record["path_signature"],
            static_score=record["static_score"],
            new_count=record["new_count"],
            lineage=record.get("lineage", 0),
        )

    def snapshot(self) -> dict:
        """Serialise the complete campaign state as a JSON-safe payload.

        Branch arcs are decoded through the subject's shared arc table into
        their stable tuple form (interned ids are process-local); the queue
        is captured verbatim — stored priorities, FIFO order and score
        caches included — so a restored campaign pops candidates in exactly
        the order the original would have.
        """
        from repro.eval.checkpoint import pack_arc_ids

        table = arc_table_for(self.subject)
        entries, counter = self._queue.dump_entries()
        id_sets = [self._valid_branches, self._hybrid_branches]
        id_sets.extend(candidate.parent_branches for _, _, candidate in entries)
        arcs, mapping = pack_arc_ids(id_sets, table)
        rng_version, rng_internal, rng_gauss = self._rng.getstate()
        elapsed = (
            time.monotonic() - self._run_started
            if self._run_started is not None
            else 0.0
        )
        result = self._result
        payload = {
            "fingerprint": self._config_fingerprint(),
            "executions": result.executions,
            "rejected": result.rejected,
            "hangs": result.hangs,
            "crashes": result.crashes,
            "valid_inputs": list(result.valid_inputs),
            "all_valid": list(result.all_valid),
            "valid_signatures": list(result.valid_signatures),
            "emit_log": [list(entry) for entry in result.emit_log],
            "resumes": result.resumes,
            "seen": sorted(self._seen),
            "all_valid_seen": sorted(self._all_valid_seen),
            "path_counts": sorted(self._path_counts.items()),
            "arcs": arcs,
            "valid_branches": sorted(
                mapping[arc] for arc in self._valid_branches
            ),
            "queue": {
                "counter": counter,
                "entries": [
                    [priority, order, self._encode_candidate(candidate, mapping)]
                    for priority, order, candidate in entries
                ],
            },
            "rng": [rng_version, list(rng_internal), rng_gauss],
            "wall_time": self._wall_consumed + elapsed,
            "phase_times": dict(self._timer.totals),
            "valid_lineage": list(result.valid_lineage),
            "lineage": self._lineage.to_payload(),
            "sync": (
                None
                if self._syncer is None
                else {
                    "cursor": self._syncer.to_payload(),
                    "last_sync": self._last_sync,
                }
            ),
        }
        if self._hybrid is not None:
            # Engine state plus the cumulative reset-folded arcs, packed
            # through the same mapping as vBr.  Keyed only in hybrid mode
            # so non-hybrid snapshots keep their pre-hybrid shape.
            hybrid_state = self._hybrid.to_payload()
            hybrid_state["branches"] = sorted(
                mapping[arc] for arc in self._hybrid_branches
            )
            payload["hybrid"] = hybrid_state
        if self.config.hunt_crashes:
            # Keyed only when hunting (crash-free configs keep their
            # pre-hunting snapshot shape); signatures serialise as lists.
            payload["crash_inputs"] = list(result.crash_inputs)
            payload["crash_signatures"] = [
                list(sig) for sig in result.crash_signatures
            ]
            payload["crash_path_signatures"] = list(
                result.crash_path_signatures
            )
        return payload

    def restore(self, payload: dict) -> None:
        """Restore a :meth:`snapshot` payload into this (fresh) fuzzer.

        Raises:
            repro.eval.checkpoint.CheckpointError: the snapshot was taken
                under a different subject or campaign configuration.
        """
        from repro.eval.checkpoint import ArcUnpacker, CheckpointError

        fingerprint = self._config_fingerprint()
        stored = payload.get("fingerprint")
        if stored != fingerprint:
            mismatched = sorted(
                key
                for key in set(fingerprint) | set(stored or {})
                if (stored or {}).get(key) != fingerprint.get(key)
            )
            raise CheckpointError(
                "snapshot was taken under a different configuration "
                f"(mismatched: {', '.join(mismatched) or 'all'})"
            )
        unpacker = ArcUnpacker(payload["arcs"], arc_table_for(self.subject))
        self._valid_branches = set(unpacker.ids(payload["valid_branches"]))
        self._vbr_frozen = frozenset(self._valid_branches)
        self._vbr_map = bytearray(
            max(self._valid_branches) + 1 if self._valid_branches else 0
        )
        for arc in self._valid_branches:
            self._vbr_map[arc] = 1
        self._path_counts = {
            signature: count for signature, count in payload["path_counts"]
        }
        self._seen = set(payload["seen"])
        # The queue's hygiene-aware compaction reads the seen set; keep
        # it pointed at the restored object, not the pre-restore one.
        self._queue.seen = self._seen
        self._all_valid_seen = set(payload["all_valid_seen"])
        result = self._result
        result.executions = payload["executions"]
        result.rejected = payload["rejected"]
        result.hangs = payload["hangs"]
        result.valid_inputs = list(payload["valid_inputs"])
        result.all_valid = list(payload["all_valid"])
        result.valid_signatures = list(payload["valid_signatures"])
        result.emit_log = [tuple(entry) for entry in payload["emit_log"]]
        result.resumes = payload["resumes"]
        # Tolerant restore: snapshots written before crash tracking (or
        # with hunting off) simply lack these keys.
        result.crashes = payload.get("crashes", 0)
        result.crash_inputs = list(payload.get("crash_inputs", []))
        result.crash_signatures = [
            tuple(sig) for sig in payload.get("crash_signatures", [])
        ]
        result.crash_path_signatures = list(
            payload.get("crash_path_signatures", [])
        )
        self._crash_seen = set(result.crash_signatures)
        # Older snapshots predate lineage tracking; they restore with an
        # empty tree and ids re-assigned from 1, which keeps the campaign
        # itself deterministic even though old chains are unavailable.
        result.valid_lineage = list(payload.get("valid_lineage", []))
        self._lineage = LineageLog.from_payload(payload.get("lineage"))
        queue = payload["queue"]
        self._queue.restore_entries(
            [
                (priority, order, self._decode_candidate(record, unpacker))
                for priority, order, record in queue["entries"]
            ],
            queue["counter"],
        )
        rng_version, rng_internal, rng_gauss = payload["rng"]
        self._rng.setstate((rng_version, tuple(rng_internal), rng_gauss))
        self._timer.totals = dict(payload["phase_times"])
        self._wall_consumed = payload["wall_time"]
        self._last_checkpoint = result.executions
        self._last_cull = result.executions
        sync_state = payload.get("sync")
        if self._syncer is not None and sync_state:
            self._syncer.restore_payload(sync_state["cursor"])
            self._last_sync = sync_state["last_sync"]
        hybrid_state = payload.get("hybrid")
        if self._hybrid is not None and hybrid_state:
            # The fingerprint check above guarantees hybrid configs
            # match, so engine presence and snapshot key always agree.
            self._hybrid.restore_payload(hybrid_state)
            self._hybrid_branches = set(
                unpacker.ids(hybrid_state["branches"])
            )

    def _write_checkpoint(self) -> None:
        from repro.eval.checkpoint import save_snapshot

        started = self._timer.start()
        save_snapshot(
            self.config.checkpoint_dir,
            self.snapshot(),
            keep=self.config.checkpoint_keep,
        )
        self._last_checkpoint = self._result.executions
        self._timer.stop("checkpoint", started)
        if self._trace_on:
            self._trace.emit(
                "checkpoint_written", executions=self._result.executions
            )

    def _maybe_checkpoint(self) -> None:
        if self.config.checkpoint_dir is None:
            return
        if (
            self._result.executions - self._last_checkpoint
            < self.config.checkpoint_every
        ):
            return
        self._write_checkpoint()

    def _resume_from_checkpoint(self) -> None:
        """Load the newest valid snapshot, if any (``config.resume``)."""
        from repro.eval.checkpoint import load_latest

        loaded = load_latest(self.config.checkpoint_dir)
        if loaded is None:
            return
        _, payload = loaded
        self.restore(payload)
        self._result.resumes += 1
        if self._trace_on:
            self._trace.emit(
                "resumed",
                executions=self._result.executions,
                resumes=self._result.resumes,
            )

    # ------------------------------------------------------------------ #
    # Main loop
    # ------------------------------------------------------------------ #

    def _budget_left(self) -> bool:
        if self._result.executions >= self.config.max_executions:
            return False
        cap = self.config.max_valid_inputs
        if cap is not None and len(self._result.valid_inputs) >= cap:
            return False
        return True

    def _prefetch(self, head: Optional[str] = None) -> None:
        """Speculatively submit the next likely executions to the engine.

        ``head`` is the text about to execute; with ``batch_size`` > 1 the
        queue's approximate next pops ride in the same round-trip.  Pure
        overlap: results are cached by text and consumed (with all
        bookkeeping) in :meth:`_execute`, so speculation — right or wrong
        — never changes the campaign.  No-op on the inline engine.
        """
        executor = self._executor
        if executor is None:
            return
        texts: List[str] = []
        if head is not None:
            texts.append(head)
        want = self.config.batch_size - len(texts)
        if want > 0:
            seen = self._seen
            for text in self._queue.peek_texts(want + 4):
                if text not in seen and text != head:
                    texts.append(text)
                    if len(texts) >= self.config.batch_size:
                        break
        if texts:
            executor.prefetch(texts)

    def run(self) -> FuzzingResult:
        """Run the campaign until the execution budget is exhausted.

        The loop starts from the empty input, exactly like Figure 1: the
        empty string is rejected with an EOF access, the random extension
        provides the first comparisons, and the queue takes over.

        With ``config.checkpoint_dir`` set, a snapshot is written every
        ``config.checkpoint_every`` executions at the iteration boundary
        (queue intact, no candidate in flight), and ``config.resume``
        restores the newest valid snapshot before fuzzing.  A resumed
        campaign re-enters the loop at exactly the point the snapshot was
        taken: the seed inputs and the empty-string start are skipped via
        ``_seen``, so the first action is the same ``_next_candidate`` pop
        (and the same RNG draws) the uninterrupted run performed there —
        which is what makes resumed output byte-identical modulo timings.

        With ``config.executor="pooled"`` the persistent forked-worker
        engine is spawned for the duration of this call and shut down on
        the way out, crash or not.
        """
        if self.config.executor == "pooled":
            from repro.runtime.executor import PooledExecutor

            self._executor = PooledExecutor(
                self.subject,
                coverage_backend=self.config.coverage_backend,
                trace_coverage=self.config.trace_coverage,
                workers=self.config.executor_workers,
                isolation=self.config.executor_isolation,
            )
        try:
            return self._run()
        finally:
            if self._executor is not None:
                self._executor.close()
                self._executor = None

    def _run(self) -> FuzzingResult:
        if self.config.checkpoint_dir is not None and self.config.resume:
            self._resume_from_checkpoint()
        run_base = self._result.executions
        started = time.monotonic()
        self._run_started = started
        if self._trace_on:
            self._trace.emit(
                "campaign_start",
                subject=type(self.subject).__name__,
                seed=self.config.seed,
                budget=self.config.max_executions,
                executions=self._result.executions,
            )
        initial_inputs = list(self.config.initial_inputs)
        for position, text in enumerate(initial_inputs):
            if not self._budget_left() or text in self._seen:
                continue
            if self._executor is not None:
                # Seed replay is a known-ahead batch: ship the next slice
                # of unseen seeds in one round-trip.
                self._executor.prefetch(
                    [
                        seed_text
                        for seed_text in initial_inputs[
                            position : position + self.config.batch_size
                        ]
                        if seed_text not in self._seen
                    ]
                )
            seed = self._seed_candidate(text)
            seeded = self._execute(text, seed.lineage)
            if self._is_valid_new(seeded):
                self._handle_valid(seeded, parents=0, lineage=seed.lineage)
            else:
                self._add_candidates(seeded, parents=0, lineage=seed.lineage)
        current: Optional[Candidate] = None
        if self._budget_left():
            current = (
                self._seed_candidate("")
                if "" not in self._seen
                else self._next_candidate()
            )
        while current is not None and self._budget_left():
            self._prefetch(current.text)
            result = self._execute(current.text, current.lineage)
            if self._is_valid_new(result):
                self._handle_valid(result, current.parents, current.lineage)
            elif len(current.text) < self.config.max_input_length and self._budget_left():
                char = self._random_char()
                extended = current.text + char
                if extended in self._seen:
                    extended_result = None
                else:
                    node = self._lineage.new_node(
                        current.lineage, "append", extended, replacement=char
                    )
                    if self._trace_on:
                        self._trace.emit(
                            "candidate_scheduled",
                            lineage=node,
                            parent=current.lineage,
                            op="append",
                            text=extended,
                            replacement=char,
                        )
                    extended_result = self._execute(extended, node)
                if extended_result is not None:
                    if self._is_valid_new(extended_result):
                        self._handle_valid(
                            extended_result, current.parents, node
                        )
                    else:
                        self._add_candidates(
                            extended_result, current.parents, node
                        )
            self._maybe_hybrid()
            self._maybe_sync()
            self._maybe_cull()
            self._maybe_checkpoint()
            if not self._budget_left():
                # Don't pop (or draw restart characters) for an iteration
                # that cannot run: the queue depth and RNG position must
                # match the final checkpoint, so resuming a finished
                # campaign reproduces its result exactly.
                break
            if self.should_preempt is not None and self.should_preempt(
                self._result.executions - run_base, self._result.executions
            ):
                # Same boundary as the budget break above: no pop, no RNG
                # draw, so the end-of-run snapshot is exactly the state an
                # uninterrupted run passed through here and a resume
                # continues it byte-identically.
                self._result.preempted = True
                if self._trace_on:
                    self._trace.emit(
                        "preempted", executions=self._result.executions
                    )
                break
            current = self._next_candidate()
        # Hybrid generation phases fold vBr into _hybrid_branches before
        # each reset; the reported set is the union, so total decoded
        # coverage stays monotone across resets (empty outside hybrid).
        self._result.valid_branches = frozenset(
            self._valid_branches | self._hybrid_branches
        )
        self._result.wall_time = self._wall_consumed + (time.monotonic() - started)
        # Report the queue's *live frontier* (dead and dominated entries
        # excluded, no mutation) rather than the raw heap length: the raw
        # length depends on whether — and when — culls ran, while the
        # frontier is identical with culling on or off, which keeps
        # ``result_fingerprint`` cull-invariant.
        self._result.queue_depth = self._queue.live_depth(self._seen)
        self._result.phase_times = dict(self._timer.totals)
        self._result.lineage = self._lineage
        if self._syncer is not None:
            # Push-only flush so the group sees this run's final inputs;
            # no pull — importing here would depend on what other shards
            # happened to have written by our finish time, which is wall
            # clock, not schedule.  Runs before the final snapshot so the
            # cursor state is durable.
            self._sync_point(pull=False)
        if self.config.checkpoint_dir is not None:
            self._write_checkpoint()
        if self._trace_on:
            self._trace.emit(
                "campaign_end",
                executions=self._result.executions,
                valid_inputs=len(self._result.valid_inputs),
                wall_time=self._result.wall_time,
            )
        if self._owns_trace:
            self._trace.close()
        return self._result
