"""Per-run recorder for comparison and EOF events.

A single :class:`Recorder` is installed for the duration of one program
execution (one fuzzer test run).  The tainted proxies report every comparison
to the ambient recorder; the harness reads the collected events afterwards to
drive substitution and the search heuristic.

The recorder is held in a :mod:`contextvars` variable so nested runs (e.g.
the evaluation harness re-running stored inputs) do not interfere.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.taint.events import ComparisonEvent, ComparisonKind, EOFEvent

_CURRENT: contextvars.ContextVar[Optional["Recorder"]] = contextvars.ContextVar(
    "repro_taint_recorder", default=None
)


class Recorder:
    """Collects the comparison trace of one program execution.

    Attributes:
        comparisons: all comparison events, in program order.
        eof_events: all accesses past the end of the input, in program order.
        depth_provider: zero-argument callable returning the current
            call-stack depth; installed by the coverage tracer so that every
            event carries the stack size used by the paper's heuristic.
    """

    def __init__(
        self,
        depth_provider: Optional[Callable[[], int]] = None,
        clock_provider: Optional[Callable[[], int]] = None,
        stack_provider: Optional[Callable[[], tuple]] = None,
    ) -> None:
        self.comparisons: List[ComparisonEvent] = []
        self.eof_events: List[EOFEvent] = []
        #: (input index, subject call stack) per in-bounds character access;
        #: consumed by the grammar miner (§7.4).
        self.accesses: List[tuple] = []
        #: Auxiliary coverage items -> first-seen clock.  Table-driven
        #: parsers report consulted table cells here (§7.1: "instead of code
        #: coverage, one could implement coverage of table elements"); the
        #: harness merges them into the run's branch set.
        self.aux_branches: Dict[tuple, int] = {}
        self.depth_provider: Callable[[], int] = depth_provider or (lambda: 0)
        self.clock_provider: Callable[[], int] = clock_provider or (lambda: 0)
        self.stack_provider: Callable[[], tuple] = stack_provider or (lambda: ())

    # ------------------------------------------------------------------ #
    # Recording (called from the proxies / wrappers)
    # ------------------------------------------------------------------ #

    def record(
        self,
        kind: ComparisonKind,
        index: int,
        tainted_value: str,
        other_value: str,
        result: bool,
        indices: Tuple[int, ...] = (),
        at_eof: bool = False,
    ) -> None:
        """Append one comparison event to the trace."""
        self.comparisons.append(
            ComparisonEvent(
                kind=kind,
                index=index,
                tainted_value=tainted_value,
                other_value=other_value,
                result=result,
                stack_depth=self.depth_provider(),
                indices=indices,
                at_eof=at_eof,
                clock=self.clock_provider(),
            )
        )

    def record_branch(self, key: tuple) -> None:
        """Record one auxiliary coverage item (e.g. a parse-table cell)."""
        if key not in self.aux_branches:
            self.aux_branches[key] = self.clock_provider()

    def record_access(self, index: int) -> None:
        """Record one in-bounds character access with its call stack."""
        self.accesses.append((index, self.stack_provider()))

    def record_eof(self, index: int) -> None:
        """Append one past-the-end access event to the trace."""
        self.eof_events.append(
            EOFEvent(
                index=index,
                stack_depth=self.depth_provider(),
                clock=self.clock_provider(),
            )
        )

    # ------------------------------------------------------------------ #
    # Queries (used by the fuzzer after the run)
    # ------------------------------------------------------------------ #

    @property
    def eof_accessed(self) -> bool:
        """True when the program tried to read past the end of the input."""
        return bool(self.eof_events)

    def last_compared_index(self) -> Optional[int]:
        """The largest input index that participated in any comparison.

        The paper considers the input valid up to (excluding) this index and
        substitutes at it.  Returns None when nothing was compared.
        """
        best: Optional[int] = None
        for event in self.comparisons:
            if best is None or event.index > best:
                best = event.index
        return best

    def comparisons_at(self, index: int) -> List[ComparisonEvent]:
        """All comparison events whose tainted operand starts at ``index``."""
        return [e for e in self.comparisons if e.index == index]

    def comparisons_touching(self, index: int) -> List[ComparisonEvent]:
        """All comparison events that involve input index ``index`` at all.

        String comparisons may *start* before the failing character but still
        constrain it; substitution therefore considers every comparison whose
        span covers the index.
        """
        touching: List[ComparisonEvent] = []
        for event in self.comparisons:
            if event.index == index or index in event.indices:
                touching.append(event)
            elif event.is_string_comparison:
                span_end = event.index + max(
                    len(event.tainted_value), len(event.other_value)
                )
                if event.index <= index < span_end:
                    touching.append(event)
        return touching

    def first_comparison_clock(self, index: int) -> Optional[int]:
        """Tracer clock of the *first* comparison at input index ``index``.

        The paper (§3.1) counts only the branches covered before this point
        when scoring an input, so that error-handling code reached after the
        rejection does not attract the search.
        """
        for event in self.comparisons:
            if event.index == index:
                return event.clock
        return None

    def first_comparison_depths(self, index: int) -> List[int]:
        """Stack depths of the comparisons at ``index``, in program order."""
        return [e.stack_depth for e in self.comparisons if e.index == index]

    def average_stack_size(self) -> float:
        """Average stack depth between the second-to-last and last comparison.

        Mirrors the paper's ``avgStackSize()`` (Algorithm 1, Line 50): larger
        stacks mean more open syntactic features, which the heuristic
        penalises so the search prefers inputs that are easy to close.
        """
        if not self.comparisons:
            return 0.0
        tail = self.comparisons[-2:]
        return sum(e.stack_depth for e in tail) / len(tail)

    def by_index(self) -> Dict[int, List[ComparisonEvent]]:
        """Group the comparison trace by starting input index."""
        grouped: Dict[int, List[ComparisonEvent]] = {}
        for event in self.comparisons:
            grouped.setdefault(event.index, []).append(event)
        return grouped


def current_recorder() -> Optional[Recorder]:
    """The recorder of the execution currently in progress, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def recording(recorder: Optional[Recorder] = None) -> Iterator[Recorder]:
    """Install ``recorder`` (or a fresh one) as the ambient recorder."""
    active = recorder if recorder is not None else Recorder()
    token = _CURRENT.set(active)
    try:
        yield active
    finally:
        _CURRENT.reset(token)
