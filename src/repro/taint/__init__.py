"""Dynamic-tainting substrate.

The paper instruments C programs with LLVM so that every input character
carries a taint (its input index) and every comparison of a tainted value is
recorded.  In this pure-Python reproduction the same information is obtained
with proxy objects: :class:`~repro.taint.tchar.TChar` wraps a single input
character and :class:`~repro.taint.tstr.TaintedStr` wraps character buffers
built from input characters.  All comparison operators on these proxies
report a :class:`~repro.taint.events.ComparisonEvent` to the ambient
:class:`~repro.taint.recorder.Recorder` before returning their ordinary
boolean result, and accesses past the end of the input report an
:class:`~repro.taint.events.EOFEvent` (the paper's "EOF detection").

Wrapped runtime functions (``strcmp``, ``isdigit``, ...) live in
:mod:`repro.taint.wrappers` and mirror the paper's wrapped C library calls.
"""

from repro.taint.events import ComparisonEvent, ComparisonKind, EOFEvent
from repro.taint.recorder import Recorder, current_recorder, recording
from repro.taint.tchar import EOF_CHAR, TChar
from repro.taint.tstr import TaintedStr

__all__ = [
    "ComparisonEvent",
    "ComparisonKind",
    "EOFEvent",
    "Recorder",
    "current_recorder",
    "recording",
    "TChar",
    "EOF_CHAR",
    "TaintedStr",
]
