"""Tainted string proxy.

Parsers accumulate input characters into buffers (identifiers, string
literals, numbers) and then compare those buffers against expected values —
typically keywords — using ``strcmp``.  :class:`TaintedStr` is the proxy for
such buffers: it keeps, for every character, the input index it originated
from (or ``None`` for characters the program synthesised itself), and records
whole-buffer comparisons as ``STRCMP`` events.

``STRCMP`` events are what let pFuzzer synthesise long keywords in one step:
when the buffer ``"wh"`` built from input indices 3–4 is compared against
``"while"``, the event says *"the input starting at index 3 was expected to
be 'while'"*, and the fuzzer substitutes the full keyword (paper §6,
discussion of AFL-CTP and Steelix).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Tuple, Union

from repro.taint.events import ComparisonKind
from repro.taint.recorder import current_recorder
from repro.taint.tchar import TChar

Appendable = Union["TaintedStr", TChar, str]


class TaintedStr:
    """An immutable string whose characters carry per-character taints.

    Attributes:
        text: the concrete string value.
        taints: one entry per character: the originating input index, or
            ``None`` for untainted characters.
    """

    __slots__ = ("text", "taints")

    def __init__(self, text: str = "", taints: Optional[Iterable[Optional[int]]] = None) -> None:
        self.text = text
        if taints is None:
            self.taints: Tuple[Optional[int], ...] = (None,) * len(text)
        else:
            self.taints = tuple(taints)
        if len(self.taints) != len(self.text):
            raise ValueError("taints must have one entry per character")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def empty(cls) -> "TaintedStr":
        """A fresh empty buffer (the parser idiom ``buf[0] = '\\0'``)."""
        return cls("", ())

    @classmethod
    def from_char(cls, char: TChar) -> "TaintedStr":
        """A one-character buffer from a tainted character."""
        if char.is_eof:
            return cls.empty()
        return cls(char.value, (char.index,))

    @staticmethod
    def _coerce(value: Appendable) -> "TaintedStr":
        if isinstance(value, TaintedStr):
            return value
        if isinstance(value, TChar):
            return TaintedStr.from_char(value)
        if isinstance(value, str):
            return TaintedStr(value)
        raise TypeError(f"cannot append {value!r} to TaintedStr")

    def append(self, value: Appendable) -> "TaintedStr":
        """Return a new buffer with ``value`` appended (taint accumulates)."""
        other = self._coerce(value)
        return TaintedStr(self.text + other.text, self.taints + other.taints)

    def __add__(self, value: Appendable) -> "TaintedStr":
        return self.append(value)

    def __radd__(self, value: Appendable) -> "TaintedStr":
        return self._coerce(value).append(self)

    # ------------------------------------------------------------------ #
    # Recording plumbing
    # ------------------------------------------------------------------ #

    def first_index(self) -> Optional[int]:
        """Input index of the first tainted character, if any."""
        for taint in self.taints:
            if taint is not None:
                return taint
        return None

    def tainted_indices(self) -> Tuple[int, ...]:
        """All input indices present in the buffer, in buffer order."""
        return tuple(t for t in self.taints if t is not None)

    def _record_strcmp(self, other: str, result: bool) -> bool:
        recorder = current_recorder()
        index = self.first_index()
        if recorder is not None and index is not None:
            recorder.record(
                ComparisonKind.STRCMP,
                index,
                self.text,
                other,
                result,
                indices=self.tainted_indices(),
            )
        return result

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TaintedStr):
            return self._record_strcmp(other.text, self.text == other.text)
        if isinstance(other, str):
            return self._record_strcmp(other, self.text == other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return NotImplemented
        return not result

    def __hash__(self) -> int:
        return hash(self.text)

    def startswith(self, prefix: str) -> bool:
        """Recorded prefix check (the ``strncmp(buf, kw, n)`` idiom)."""
        return self._record_strcmp(prefix, self.text.startswith(prefix))

    # ------------------------------------------------------------------ #
    # Sequence protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.text)

    def __bool__(self) -> bool:
        return bool(self.text)

    def __getitem__(self, key: Union[int, slice]) -> Union[TChar, "TaintedStr"]:
        if isinstance(key, slice):
            return TaintedStr(self.text[key], self.taints[key])
        taint = self.taints[key]
        if taint is None:
            # Untainted characters still flow through the parser; give them a
            # harmless negative pseudo-index so comparisons do not crash but
            # also never masquerade as real input positions.
            return TChar(self.text[key], -1)
        return TChar(self.text[key], taint)

    def __iter__(self) -> Iterator[TChar]:
        for position in range(len(self.text)):
            yield self[position]

    # ------------------------------------------------------------------ #
    # Taint-preserving string operations
    # ------------------------------------------------------------------ #

    @staticmethod
    def _strippable(char: str, chars: Optional[str]) -> bool:
        """``str.strip`` semantics: None means *any* Unicode whitespace
        (``str.isspace``), not a hardcoded ASCII set — U+00A0, U+2028 and
        friends strip exactly as they would from a plain ``str``."""
        if chars is None:
            return char.isspace()
        return char in chars

    def strip(self, chars: Optional[str] = None) -> "TaintedStr":
        """Strip from both ends, keeping taints aligned."""
        return self.lstrip(chars).rstrip(chars)

    def lstrip(self, chars: Optional[str] = None) -> "TaintedStr":
        start = 0
        while start < len(self.text) and self._strippable(
            self.text[start], chars
        ):
            start += 1
        return self[start:]

    def rstrip(self, chars: Optional[str] = None) -> "TaintedStr":
        end = len(self.text)
        while end > 0 and self._strippable(self.text[end - 1], chars):
            end -= 1
        return self[:end]

    def _map_case(self, convert) -> "TaintedStr":
        """Case-map per character, realigning taints when lengths change.

        Unicode case mapping is not length-preserving (``"ß".upper()`` is
        ``"SS"``, ``"İ".lower()`` is ``"i̇"``): converting the whole text and
        reusing the old taint tuple would desynchronise — or crash the
        constructor's length check.  Mapping one character at a time keeps
        the alignment exact: every character an expansion produces
        originated from the same input index, so the taint repeats.
        """
        pieces = []
        taints = []
        for char, taint in zip(self.text, self.taints):
            converted = convert(char)
            pieces.append(converted)
            taints.extend((taint,) * len(converted))
        return TaintedStr("".join(pieces), taints)

    def lower(self) -> "TaintedStr":
        return self._map_case(str.lower)

    def upper(self) -> "TaintedStr":
        return self._map_case(str.upper)

    def find_char(self, chars: str) -> int:
        """Index (in the buffer) of the first character from ``chars``.

        Each inspected character is recorded as an ``IN`` comparison, the
        behaviour of a wrapped ``strpbrk``/``strchr`` scan.  Returns -1 when
        no character matches.
        """
        for position, char in enumerate(self):
            if char.in_set(chars):
                return position
        return -1

    def __str__(self) -> str:
        return self.text

    def __repr__(self) -> str:
        return f"TaintedStr({self.text!r}, taints={list(self.taints)!r})"
