"""Token-taint bridging (the paper's §7.2 future work, implemented).

Tokenization breaks direct data flow: once the lexer has turned ``(`` into
``LPAREN``, the parser compares token *kinds*, and the taint instrumentation
sees nothing ("tokens represent a break in data flow", §7.2).  The paper
proposes "to identify typical tokenization patterns to propagate taint
information even in the presence of implicit data flow to tokens, such that
we can recover the concrete character comparisons we need".

This module is that recovery: a parser that checks the current token
against an expected token reports the check here, and the bridge re-expresses
it as an ordinary string comparison *at the token's input index* against the
expected token's spelling.  To the fuzzer it looks exactly like a wrapped
``strcmp`` — so "after ``while`` a ``(`` is expected" becomes a substitution
candidate, which is precisely the information tokenization had destroyed.

Bridging is **opt-in** (subjects default to the paper's behaviour so the
§7.2 limitation stays reproducible); the ablation benchmark measures what
it buys.
"""

from __future__ import annotations

from typing import Tuple

from repro.taint.events import ComparisonKind
from repro.taint.recorder import current_recorder


def record_token_expectation(
    index: int,
    actual_spelling: str,
    expected_spelling: str,
    matched: bool,
) -> None:
    """Report "the token at ``index`` was checked against ``expected``".

    Args:
        index: input index of the checked token's first character; for an
            EOF token this is ``len(input)``, so a derived substitution
            *appends* the expected spelling.
        actual_spelling: concrete spelling of the current token ("" at EOF).
        expected_spelling: spelling of the expected token (a representative
            spelling for token classes, e.g. ``"0"`` for numbers).
        matched: whether the check succeeded.
    """
    recorder = current_recorder()
    if recorder is None or not expected_spelling:
        return
    indices: Tuple[int, ...] = tuple(
        range(index, index + len(actual_spelling))
    )
    recorder.record(
        ComparisonKind.STRCMP,
        index,
        actual_spelling,
        expected_spelling,
        matched,
        indices=indices,
        at_eof=not actual_spelling,
    )
