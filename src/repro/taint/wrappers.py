"""Wrapped runtime functions.

The paper wraps C runtime conversion and comparison functions (``strcpy``,
``strcmp``, ...) "such that the taints automatically propagate correctly" and
so that comparisons of tainted values are tracked.  These are the Python
analogues, written to mirror the C call sites in the subjects so the parsers
read like their upstream sources.

All functions accept tainted proxies (:class:`~repro.taint.tchar.TChar`,
:class:`~repro.taint.tstr.TaintedStr`) as well as plain strings; plain
strings simply do not record anything.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.taint.events import ComparisonKind
from repro.taint.recorder import current_recorder
from repro.taint.tchar import DIGITS, TChar
from repro.taint.tstr import TaintedStr

StrLike = Union[TaintedStr, str]
CharLike = Union[TChar, str]


def _as_tstr(value: Union[TaintedStr, TChar, str]) -> TaintedStr:
    if isinstance(value, TaintedStr):
        return value
    if isinstance(value, TChar):
        return TaintedStr.from_char(value)
    return TaintedStr(value)


def _record_strcmp(tainted: TaintedStr, other: str, result: bool) -> None:
    recorder = current_recorder()
    index = tainted.first_index()
    if recorder is not None and index is not None:
        recorder.record(
            ComparisonKind.STRCMP,
            index,
            tainted.text,
            other,
            result,
            indices=tainted.tainted_indices(),
        )


def strcmp(left: Union[TaintedStr, TChar, str], right: str) -> int:
    """C ``strcmp``: 0 when equal, otherwise the sign of the first mismatch.

    The comparison is recorded as one ``STRCMP`` event carrying the *whole*
    expected string, which is what allows the fuzzer to substitute complete
    keywords (paper §6: "pFuzzer ... monitors the calls to strcmp()
    dynamically and therefore recognizes the different comparisons made").
    """
    tainted = _as_tstr(left)
    _record_strcmp(tainted, right, tainted.text == right)
    if tainted.text == right:
        return 0
    return -1 if tainted.text < right else 1


def strncmp(left: Union[TaintedStr, TChar, str], right: str, count: int) -> int:
    """C ``strncmp``: compare at most ``count`` characters."""
    tainted = _as_tstr(left)
    prefix_left = tainted.text[:count]
    prefix_right = right[:count]
    _record_strcmp(tainted[:count], prefix_right, prefix_left == prefix_right)
    if prefix_left == prefix_right:
        return 0
    return -1 if prefix_left < prefix_right else 1


def memcmp(left: Union[TaintedStr, TChar, str], right: str, count: int) -> int:
    """C ``memcmp`` over character data: identical to :func:`strncmp` here."""
    return strncmp(left, right, count)


def strchr(chars: str, char: CharLike) -> bool:
    """C ``strchr(set, c) != NULL``: is ``char`` one of ``chars``?

    Recorded as an ``IN`` comparison so every member of ``chars`` becomes a
    substitution candidate.
    """
    if isinstance(char, TChar):
        return char.in_set(chars)
    return char in chars


def switch_on(char: CharLike, cases: str) -> bool:
    """A C ``switch`` over character case labels.

    Records one ``SWITCH`` event listing every case label, then reports
    whether ``char`` matches any of them.  Parsers written with big switch
    statements (cJSON's value dispatch, mjs's operator lexing) use this to
    expose all alternatives to the fuzzer in one event.
    """
    if isinstance(char, TChar):
        recorder = current_recorder()
        result = (not char.is_eof) and char.value in cases
        if recorder is not None:
            recorder.record(
                ComparisonKind.SWITCH,
                char.index,
                char.value,
                cases,
                result,
                indices=() if char.is_eof else (char.index,),
                at_eof=char.is_eof,
            )
        return result
    return char in cases


def atoi(value: Union[TaintedStr, str]) -> int:
    """C ``atoi``: leading optional sign and digits; taint is consumed."""
    text = value.text if isinstance(value, TaintedStr) else value
    text = text.lstrip(" \t\n\r")
    sign = 1
    position = 0
    if position < len(text) and text[position] in "+-":
        sign = -1 if text[position] == "-" else 1
        position += 1
    digits = ""
    while position < len(text) and text[position] in DIGITS:
        digits += text[position]
        position += 1
    return sign * int(digits) if digits else 0


def atof(value: Union[TaintedStr, str]) -> float:
    """C ``atof``/``strtod``-style conversion of a leading float literal."""
    text = value.text if isinstance(value, TaintedStr) else value
    text = text.lstrip(" \t\n\r")
    best: Optional[float] = None
    for end in range(len(text), 0, -1):
        try:
            best = float(text[:end])
            break
        except ValueError:
            continue
    return best if best is not None else 0.0


def strcpy(source: Union[TaintedStr, TChar, str]) -> TaintedStr:
    """C ``strcpy``: a copy that preserves taints (wrapped in the paper)."""
    return _as_tstr(source)
