"""Tainted character proxy.

A :class:`TChar` stands for one character read from the program input.  It
remembers the input index it came from (its *taint*) and reports every
comparison it participates in to the ambient
:class:`~repro.taint.recorder.Recorder`.  This is the Python analogue of the
paper's LLVM taint instrumentation: "When read, each character is associated
with a unique identifier; this taint is later passed on to values derived
from that character."

Reading past the end of the input yields the EOF sentinel
(``TChar.eof(index)``), mirroring C's ``getchar()`` returning ``EOF``.
Comparisons against the sentinel are recorded with ``at_eof=True`` and its
numeric code is ``-1`` so that range checks such as ``c >= '0'`` behave the
way they do for C's ``EOF``.
"""

from __future__ import annotations

import string
from typing import Tuple, Union

from repro.taint.events import ComparisonKind
from repro.taint.recorder import current_recorder

#: Character classes used by the ``is*`` predicates.  Restricted to ASCII, as
#: the paper's subjects are byte-oriented C parsers.
DIGITS = string.digits
HEX_DIGITS = string.hexdigits
LETTERS = string.ascii_letters
LOWER = string.ascii_lowercase
UPPER = string.ascii_uppercase
ALNUM = string.ascii_letters + string.digits
SPACES = " \t\n\r\v\f"
PRINTABLE = "".join(chr(c) for c in range(0x20, 0x7F))

CharLike = Union["TChar", str]


class TChar:
    """One tainted input character (or the EOF sentinel).

    Attributes:
        value: the concrete character (empty string for EOF).
        index: the input index this character came from.  For EOF this is
            the index of the failed access, i.e. ``len(input)``.
        is_eof: True for the EOF sentinel.
    """

    __slots__ = ("value", "index", "is_eof", "code")

    def __init__(self, value: str, index: int, is_eof: bool = False) -> None:
        if is_eof:
            value = ""
        elif len(value) != 1:
            raise ValueError(f"TChar wraps exactly one character, got {value!r}")
        self.value = value
        self.index = index
        self.is_eof = is_eof
        #: Numeric character code; ``-1`` for EOF (as in C).  Precomputed:
        #: every recorded comparison reads it, often several times per
        #: fetched character.
        self.code = -1 if is_eof else ord(value)

    @classmethod
    def eof(cls, index: int) -> "TChar":
        """The EOF sentinel for a failed access at input index ``index``."""
        return cls("", index, is_eof=True)

    # ------------------------------------------------------------------ #
    # Recording plumbing
    # ------------------------------------------------------------------ #

    def _indices(self) -> Tuple[int, ...]:
        return () if self.is_eof else (self.index,)

    def _record(self, kind: ComparisonKind, other_value: str, result: bool) -> bool:
        recorder = current_recorder()
        if recorder is not None:
            recorder.record(
                kind,
                self.index,
                self.value,
                other_value,
                result,
                indices=self._indices(),
                at_eof=self.is_eof,
            )
        return result

    @staticmethod
    def _other(other: CharLike) -> Tuple[str, int]:
        """Concrete value and code of the non-tainted comparison operand."""
        if isinstance(other, TChar):
            return other.value, other.code
        if isinstance(other, str) and len(other) == 1:
            return other, ord(other)
        raise TypeError(f"cannot compare TChar with {other!r}")

    # ------------------------------------------------------------------ #
    # Relational operators (all recorded)
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TChar) and other.is_eof:
            return self._record(ComparisonKind.EQ, "", self.is_eof)
        if not isinstance(other, (TChar, str)):
            return NotImplemented
        if isinstance(other, str) and len(other) != 1:
            # Comparing one character with a longer string is always False in
            # Python; record a string comparison so keyword checks written as
            # ``c == "if"`` still inform the fuzzer.
            return self._record(ComparisonKind.STRCMP, other, False)
        value, code = self._other(other)
        return self._record(ComparisonKind.EQ, value, self.code == code)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return NotImplemented
        return not result

    def __lt__(self, other: CharLike) -> bool:
        value, code = self._other(other)
        return self._record(ComparisonKind.LT, value, self.code < code)

    def __le__(self, other: CharLike) -> bool:
        value, code = self._other(other)
        return self._record(ComparisonKind.LE, value, self.code <= code)

    def __gt__(self, other: CharLike) -> bool:
        value, code = self._other(other)
        return self._record(ComparisonKind.GT, value, self.code > code)

    def __ge__(self, other: CharLike) -> bool:
        value, code = self._other(other)
        return self._record(ComparisonKind.GE, value, self.code >= code)

    def __hash__(self) -> int:
        return hash(self.value)

    # ------------------------------------------------------------------ #
    # Character-class predicates (recorded as IN comparisons)
    # ------------------------------------------------------------------ #

    def _in_class(self, chars: str) -> bool:
        result = (not self.is_eof) and self.value in chars
        self._record(ComparisonKind.IN, chars, result)
        return result

    def isdigit(self) -> bool:
        """C ``isdigit``: decimal digit check, recorded against ``0-9``."""
        return self._in_class(DIGITS)

    def isxdigit(self) -> bool:
        """C ``isxdigit``: hexadecimal digit check."""
        return self._in_class(HEX_DIGITS)

    def isalpha(self) -> bool:
        """C ``isalpha``: ASCII letter check."""
        return self._in_class(LETTERS)

    def isalnum(self) -> bool:
        """C ``isalnum``: ASCII letter-or-digit check."""
        return self._in_class(ALNUM)

    def isspace(self) -> bool:
        """C ``isspace``: whitespace check."""
        return self._in_class(SPACES)

    def islower(self) -> bool:
        return self._in_class(LOWER)

    def isupper(self) -> bool:
        return self._in_class(UPPER)

    def isprint(self) -> bool:
        """C ``isprint``: printable ASCII check."""
        return self._in_class(PRINTABLE)

    def in_set(self, chars: str) -> bool:
        """Membership in an arbitrary character set (C ``strchr`` idiom)."""
        return self._in_class(chars)

    # ------------------------------------------------------------------ #
    # Taint-preserving transforms and conversions
    # ------------------------------------------------------------------ #

    def lower(self) -> "TChar":
        """Lower-cased copy carrying the same taint (wrapped ``tolower``)."""
        if self.is_eof:
            return self
        return TChar(self.value.lower(), self.index)

    def upper(self) -> "TChar":
        """Upper-cased copy carrying the same taint (wrapped ``toupper``)."""
        if self.is_eof:
            return self
        return TChar(self.value.upper(), self.index)

    def digit_value(self) -> int:
        """``c - '0'`` for digit characters (taint is consumed)."""
        if self.is_eof or self.value not in DIGITS:
            raise ValueError(f"not a digit: {self!r}")
        return ord(self.value) - ord("0")

    def hex_value(self) -> int:
        """Numeric value of a hexadecimal digit character."""
        if self.is_eof or self.value not in HEX_DIGITS:
            raise ValueError(f"not a hex digit: {self!r}")
        return int(self.value, 16)

    def __str__(self) -> str:
        return self.value

    def __bool__(self) -> bool:
        """False only for EOF, mirroring C's ``if ((c = getchar()) != EOF)``."""
        return not self.is_eof

    def __repr__(self) -> str:
        if self.is_eof:
            return f"TChar.eof({self.index})"
        return f"TChar({self.value!r}, {self.index})"


#: Module-level EOF marker for convenience comparisons such as
#: ``if c == EOF_CHAR``.  Its index is meaningless; real EOF sentinels are
#: produced by the input stream with the correct access index.
EOF_CHAR = TChar.eof(-1)
