"""Event records produced by the tainting substrate.

Two kinds of events drive parser-directed fuzzing:

* :class:`ComparisonEvent` — a tainted value was compared against some other
  value.  The fuzzer uses the events at the *last compared input index* to
  derive substitutions (paper §3, Algorithm 1 ``addInputs``).
* :class:`EOFEvent` — the program tried to access an input index past the end
  of the current input.  The fuzzer interprets this as "the parser wants more
  characters" and appends a random character (paper §2, Figure 1).
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Tuple


class ComparisonKind(enum.Enum):
    """What sort of comparison was observed.

    ``EQ``/``NE``/``LT``/``LE``/``GT``/``GE`` are single-character relational
    comparisons; ``IN`` is membership in a character class (``isdigit`` and
    friends, ``strchr``); ``STRCMP`` is a multi-character string comparison
    (wrapped ``strcmp``/``strncmp``/``memcmp``); ``SWITCH`` marks a
    multi-way character dispatch.
    """

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IN = "in"
    STRCMP = "strcmp"
    SWITCH = "switch"


#: Comparison kinds whose ``other_value`` is a *set* of acceptable characters.
SET_KINDS = frozenset({ComparisonKind.IN, ComparisonKind.SWITCH})


class ComparisonEvent(NamedTuple):
    """A single observed comparison of a tainted value.

    A ``NamedTuple`` rather than a dataclass: events are created on the
    hottest path of every execution (one per observed comparison), and
    tuple construction is several times cheaper than frozen-dataclass
    ``__init__``.

    Attributes:
        kind: the comparison operator observed.
        index: input index of the *first* character of the tainted operand.
            For single-character comparisons this is the index of the
            character itself; for ``STRCMP`` it is where the compared buffer
            started in the input.
        tainted_value: the concrete text of the tainted operand.
        other_value: what it was compared against.  A single character for
            relational kinds, a string for ``STRCMP``, a string of acceptable
            characters for ``IN``/``SWITCH``.
        result: the concrete outcome of the comparison (truth value, or the
            sign for ``STRCMP``).
        stack_depth: call-stack depth at the time of the comparison (feeds the
            ``avgStackSize`` term of the paper's heuristic).
        indices: input indices of every tainted character involved.  Empty
            for the EOF sentinel, whose ``index`` equals ``len(input)``.
        at_eof: True when the tainted operand is (or contains) the EOF
            sentinel, i.e. the comparison happened past the end of the input.
        clock: value of the coverage tracer's monotonic clock when the
            comparison happened.  Lets the fuzzer count only the branches
            covered *before* the first comparison of the last character
            (paper §3.1).
    """

    kind: ComparisonKind
    index: int
    tainted_value: str
    other_value: str
    result: bool
    stack_depth: int = 0
    indices: Tuple[int, ...] = ()
    at_eof: bool = False
    clock: int = 0

    @property
    def is_string_comparison(self) -> bool:
        """True for multi-character (``strcmp``-style) comparisons."""
        return self.kind is ComparisonKind.STRCMP

    def replacement_candidates(self) -> Tuple[str, ...]:
        """Values that would satisfy this comparison at :attr:`index`.

        This is the core of the paper's substitution step: "replace the
        character that was lastly compared with one of the values it was
        compared to".  For character-class comparisons every member of the
        class is a candidate; for string comparisons the whole expected
        string is the (single) candidate.
        """
        if self.kind in SET_KINDS:
            return tuple(dict.fromkeys(self.other_value))
        if self.kind is ComparisonKind.STRCMP:
            return (self.other_value,) if self.other_value else ()
        if self.kind in (ComparisonKind.EQ, ComparisonKind.NE):
            return (self.other_value,) if self.other_value else ()
        # Relational comparisons (c <= '9', c >= 'a', ...) bound a range; the
        # compared constant itself is always a satisfying witness.
        return (self.other_value,) if self.other_value else ()


class EOFEvent(NamedTuple):
    """The program accessed input index ``index`` past the end of the input.

    The paper treats "any operation that tries to access past the end of a
    given argument" as the parser encountering EOF before processing is
    complete; the fuzzer responds by appending a character.
    """

    index: int
    stack_depth: int = 0
    clock: int = 0
