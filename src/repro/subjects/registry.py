"""Subject registry and size accounting (Table 1).

``load_subject(name)`` builds a fresh subject instance; fresh instances keep
fuzzing campaigns independent (subjects hold no cross-run state, but the
registry still hands out new objects to be safe).
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Tuple

from repro.subjects.base import Subject


def _make_expr() -> Subject:
    from repro.subjects.expr import ExprSubject

    return ExprSubject()


def _make_ini() -> Subject:
    from repro.subjects.ini import IniSubject

    return IniSubject()


def _make_csv() -> Subject:
    from repro.subjects.csvp import CsvSubject

    return CsvSubject()


def _make_json() -> Subject:
    from repro.subjects.cjson import CJsonSubject

    return CJsonSubject()


def _make_tinyc() -> Subject:
    from repro.subjects.tinyc import TinyCSubject

    return TinyCSubject()


def _make_mjs() -> Subject:
    from repro.subjects.mjs import MjsSubject

    return MjsSubject()


_FACTORIES: Dict[str, Callable[[], Subject]] = {
    "expr": _make_expr,
    "ini": _make_ini,
    "csv": _make_csv,
    "json": _make_json,
    "tinyc": _make_tinyc,
    "mjs": _make_mjs,
}

#: The five paper subjects, in Table 1 order, plus the §2 demo subject.
SUBJECT_NAMES: Tuple[str, ...] = ("ini", "csv", "json", "tinyc", "mjs")

#: Every loadable subject, including the §2 demo subject ``expr``.
ALL_SUBJECT_NAMES: Tuple[str, ...] = ("expr",) + SUBJECT_NAMES

#: Upstream C sizes from Table 1, for the size-comparison report.
PAPER_LOC: Dict[str, int] = {
    "ini": 293,
    "csv": 297,
    "json": 2483,
    "tinyc": 191,
    "mjs": 10920,
}


def load_subject(name: str) -> Subject:
    """Instantiate a subject by registry name.

    Raises:
        KeyError: unknown subject name.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(f"unknown subject {name!r}; known subjects: {known}") from None
    return factory()


def subject_sloc(subject: Subject) -> int:
    """Source lines of code of this reproduction's subject modules.

    Counts non-blank, non-comment lines across all modules of the subject —
    our side of Table 1.
    """
    total = 0
    for module in subject.modules():
        source = inspect.getsource(module)
        for line in source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total
