"""Subject registry, plugin API and size accounting (Table 1).

``load_subject(name)`` builds a fresh subject instance; fresh instances keep
fuzzing campaigns independent (subjects hold no cross-run state, but the
registry still hands out new objects to be safe).

Beyond the built-in paper subjects, the registry is pluggable — the paper's
premise is that parser-directed fuzzing works on *any* program reading
input character by character, so third-party parsers onboard three ways:

* :func:`register_subject` — register a factory programmatically (usually
  a :class:`~repro.subjects.function.FunctionSubject` around a plain
  parsing callable);
* ``--subject-module`` / :func:`load_subject_module` — import a module
  whose import-time side effect is one or more ``register_subject`` calls;
* ``importlib.metadata`` entry points in the ``repro.subjects`` group —
  installed distributions advertise factories that are discovered lazily.

The bundled contrib subjects (:mod:`repro.subjects.contrib`) use the
module-registration path and double as the plugin API's reference users.
"""

from __future__ import annotations

import importlib
import inspect
from typing import Callable, Dict, Tuple

from repro.subjects.base import Subject


def _make_expr() -> Subject:
    from repro.subjects.expr import ExprSubject

    return ExprSubject()


def _make_ini() -> Subject:
    from repro.subjects.ini import IniSubject

    return IniSubject()


def _make_csv() -> Subject:
    from repro.subjects.csvp import CsvSubject

    return CsvSubject()


def _make_json() -> Subject:
    from repro.subjects.cjson import CJsonSubject

    return CJsonSubject()


def _make_tinyc() -> Subject:
    from repro.subjects.tinyc import TinyCSubject

    return TinyCSubject()


def _make_mjs() -> Subject:
    from repro.subjects.mjs import MjsSubject

    return MjsSubject()


_FACTORIES: Dict[str, Callable[[], Subject]] = {
    "expr": _make_expr,
    "ini": _make_ini,
    "csv": _make_csv,
    "json": _make_json,
    "tinyc": _make_tinyc,
    "mjs": _make_mjs,
}

#: The five paper subjects, in Table 1 order.  The §2 demo subject
#: ``expr`` is deliberately excluded — evaluation grids iterate this
#: tuple; :data:`ALL_SUBJECT_NAMES` adds ``expr`` back for loading.
SUBJECT_NAMES: Tuple[str, ...] = ("ini", "csv", "json", "tinyc", "mjs")

#: Every built-in loadable subject: the §2 demo subject ``expr`` plus the
#: five paper subjects.  Plugin and contrib subjects are *not* listed here
#: (the tuple is part of the stable evaluation surface); use
#: :func:`available_subjects` for the full loadable set.
ALL_SUBJECT_NAMES: Tuple[str, ...] = ("expr",) + SUBJECT_NAMES

#: Upstream C sizes from Table 1, for the size-comparison report.
PAPER_LOC: Dict[str, int] = {
    "ini": 293,
    "csv": 297,
    "json": 2483,
    "tinyc": 191,
    "mjs": 10920,
}

#: Plugin factories registered at runtime (register_subject / modules /
#: entry points).  Kept separate from the built-ins so re-registration
#: can never shadow a paper subject.
_PLUGIN_FACTORIES: Dict[str, Callable[[], Subject]] = {}

#: Bundled plugin-style subjects, registered lazily on first reference so
#: ``import repro`` stays lean.  Importing any of these modules calls
#: :func:`register_subject` as its import-time side effect — the same
#: path an external ``--subject-module`` takes.
_CONTRIB_MODULES: Dict[str, str] = {
    "url": "repro.subjects.contrib.urlp",
    "httpreq": "repro.subjects.contrib.httpreq",
    "isodate": "repro.subjects.contrib.isodate",
}

#: ``importlib.metadata`` entry-point group scanned for subject factories.
ENTRY_POINT_GROUP = "repro.subjects"

_entry_points_scanned = False


class SubjectRegistrationError(ValueError):
    """A plugin registration was invalid (name clash, bad factory)."""


def register_subject(
    name: str,
    factory: Callable[[], Subject],
    *,
    replace: bool = False,
) -> None:
    """Register a plugin subject factory under ``name``.

    Args:
        name: registry key; must not collide with a built-in subject.
        factory: zero-argument callable returning a fresh
            :class:`~repro.subjects.base.Subject` per call.
        replace: allow re-registering an existing plugin name (built-ins
            can never be replaced).

    Raises:
        SubjectRegistrationError: empty name, built-in collision, or a
            duplicate plugin name without ``replace=True``.
    """
    if not isinstance(name, str) or not name:
        raise SubjectRegistrationError(
            f"subject name must be a non-empty string, got {name!r}"
        )
    if name in _FACTORIES:
        raise SubjectRegistrationError(
            f"cannot register {name!r}: it is a built-in subject"
        )
    if name in _PLUGIN_FACTORIES and not replace:
        raise SubjectRegistrationError(
            f"subject {name!r} is already registered (pass replace=True "
            "to overwrite)"
        )
    if not callable(factory):
        raise SubjectRegistrationError(
            f"factory for {name!r} must be callable, got {factory!r}"
        )
    _PLUGIN_FACTORIES[name] = factory


def load_subject_module(module_name: str) -> Tuple[str, ...]:
    """Import a plugin module, returning the names it registered.

    The module's import-time side effect is expected to be one or more
    :func:`register_subject` calls (re-imports are no-ops, so the module
    should pass ``replace=True`` or guard against double registration).

    Raises:
        SubjectRegistrationError: the module could not be imported.
    """
    before = set(_PLUGIN_FACTORIES)
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise SubjectRegistrationError(
            f"cannot import subject module {module_name!r}: {exc}"
        ) from exc
    registered = tuple(sorted(set(_PLUGIN_FACTORIES) - before))
    if not registered and hasattr(module, "register"):
        # Re-import of an already-loaded module: let it re-register.
        module.register()
        registered = tuple(sorted(set(_PLUGIN_FACTORIES) - before))
    return registered


def _scan_entry_points() -> None:
    """Register factories advertised in the ``repro.subjects`` group."""
    global _entry_points_scanned
    if _entry_points_scanned:
        return
    _entry_points_scanned = True
    try:
        from importlib.metadata import entry_points
    except ImportError:  # pragma: no cover - py3.7 fallback not shipped
        return
    try:
        group = entry_points(group=ENTRY_POINT_GROUP)
    except TypeError:  # pragma: no cover - pre-3.10 select API
        group = entry_points().get(ENTRY_POINT_GROUP, ())
    for entry in group:
        if entry.name in _FACTORIES or entry.name in _PLUGIN_FACTORIES:
            continue
        try:
            factory = entry.load()
        except Exception:  # noqa: BLE001 - a broken plugin must not
            continue  # take the registry down with it
        if callable(factory):
            _PLUGIN_FACTORIES[entry.name] = factory


def available_subjects() -> Tuple[str, ...]:
    """Every loadable subject name: built-ins, plugins and contrib.

    Built-ins come first in their canonical order; plugin and contrib
    names follow sorted.
    """
    _scan_entry_points()
    extra = set(_PLUGIN_FACTORIES) | set(_CONTRIB_MODULES)
    return ALL_SUBJECT_NAMES + tuple(
        sorted(extra - set(ALL_SUBJECT_NAMES))
    )


def is_known_subject(name: str) -> bool:
    """True when :func:`load_subject` would succeed for ``name``."""
    if name in _FACTORIES or name in _PLUGIN_FACTORIES:
        return True
    if name in _CONTRIB_MODULES:
        return True
    _scan_entry_points()
    return name in _PLUGIN_FACTORIES


def load_subject(name: str) -> Subject:
    """Instantiate a subject by registry name.

    Resolution order: built-ins, registered plugins, bundled contrib
    modules (imported lazily), then ``repro.subjects`` entry points.

    Raises:
        KeyError: unknown subject name; the message lists every
            available name, plugins included.
    """
    factory = _FACTORIES.get(name) or _PLUGIN_FACTORIES.get(name)
    if factory is None and name in _CONTRIB_MODULES:
        load_subject_module(_CONTRIB_MODULES[name])
        factory = _PLUGIN_FACTORIES.get(name)
    if factory is None:
        _scan_entry_points()
        factory = _PLUGIN_FACTORIES.get(name)
    if factory is None:
        known = ", ".join(available_subjects())
        raise KeyError(
            f"unknown subject {name!r}; available subjects: {known}"
        )
    return factory()


def subject_sloc(subject: Subject) -> int:
    """Source lines of code of this reproduction's subject modules.

    Counts non-blank, non-comment lines across all modules of the subject —
    our side of Table 1.
    """
    total = 0
    for module in subject.modules():
        source = inspect.getsource(module)
        for line in source.splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#"):
                total += 1
    return total
