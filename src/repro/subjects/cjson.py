"""cJSON-style JSON parser (subject "json", Table 1: 2,483 LoC upstream).

Mirrors DaveGamble/cJSON's ``parse_value`` structure: keyword literals are
matched with ``strncmp`` against ``"null"``, ``"false"`` and ``"true"``
(which is exactly what lets pFuzzer synthesise those keywords from the
recorded string comparisons), strings support the full escape set including
``\\uXXXX`` with UTF-16 surrogate pairs, and numbers follow cJSON's
"collect number-ish characters, then let strtod decide how much it eats"
behaviour.

The UTF-16 surrogate logic deliberately operates on *plain integers* derived
from the hex digits — taint is lost there, reproducing the limitation the
paper reports for cJSON ("we never reach the parts of the code comparing the
input with the UTF16 encoding", §5.2).
"""

from __future__ import annotations

from typing import Dict, List, Union

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.base import Subject
from repro.taint.tstr import TaintedStr
from repro.taint.wrappers import strncmp, switch_on

JsonValue = Union[None, bool, float, str, List["JsonValue"], Dict[str, "JsonValue"]]

#: Characters cJSON's parse_number collects before calling strtod.
_NUMBER_CHARS = "0123456789+-eE."


class CJsonSubject(Subject):
    """Recursive-descent JSON parser following cJSON's control flow."""

    name = "json"
    description = "cJSON-style JSON parser"

    #: Recursion limit, the analogue of CJSON_NESTING_LIMIT (default 1000;
    #: kept small so runaway nesting fails fast instead of blowing the
    #: Python stack).
    nesting_limit = 100

    def parse(self, stream: InputStream) -> JsonValue:
        self._skip_whitespace(stream)
        if stream.peek().is_eof:
            # Whitespace-only input is accepted by the paper's driver setup
            # (§5.1: the single-space AFL seed "is accepted by all
            # programs as valid").
            return None
        value = self._parse_value(stream, 0)
        self._skip_whitespace(stream)
        lookahead = stream.peek()
        if not lookahead.is_eof:
            # cJSON with require_null_terminated: trailing bytes are an error.
            raise ParseError(f"trailing input at {lookahead.index}", lookahead.index)
        return value

    # ------------------------------------------------------------------ #
    # parse_value: the cJSON dispatch
    # ------------------------------------------------------------------ #

    def _parse_value(self, stream: InputStream, depth: int) -> JsonValue:
        if depth >= self.nesting_limit:
            raise ParseError(f"nesting too deep at {stream.pos}", stream.pos)
        if strncmp(self._peek_string(stream, 4), "null", 4) == 0:
            stream.pos += 4
            return None
        if strncmp(self._peek_string(stream, 5), "false", 5) == 0:
            stream.pos += 5
            return False
        if strncmp(self._peek_string(stream, 4), "true", 4) == 0:
            stream.pos += 4
            return True
        lookahead = stream.peek()
        if lookahead == '"':
            return self._parse_string(stream)
        if lookahead == "-" or lookahead.isdigit():
            return self._parse_number(stream)
        if lookahead == "[":
            return self._parse_array(stream, depth)
        if lookahead == "{":
            return self._parse_object(stream, depth)
        raise ParseError(f"invalid value at {lookahead.index}", lookahead.index)

    def _peek_string(self, stream: InputStream, count: int) -> TaintedStr:
        """Up to ``count`` upcoming characters as a tainted buffer.

        cJSON checks ``can_read(buffer, n)`` before its strncmp calls, so no
        EOF access is reported here; the clamped buffer simply compares
        unequal.
        """
        chars: List[str] = []
        taints: List[int] = []
        for offset in range(count):
            position = stream.pos + offset
            if position >= len(stream.text):
                break
            chars.append(stream.text[position])
            taints.append(position)
        return TaintedStr("".join(chars), taints)

    # ------------------------------------------------------------------ #
    # Strings (cJSON parse_string)
    # ------------------------------------------------------------------ #

    def _parse_string(self, stream: InputStream) -> str:
        opening = stream.next_char()
        if opening != '"':
            raise ParseError(f"expected '\"' at {opening.index}", opening.index)
        output: List[str] = []
        while True:
            char = stream.next_char()
            if char.is_eof:
                raise ParseError(f"unterminated string at {char.index}", char.index)
            if char == '"':
                return "".join(output)
            if char == "\\":
                output.append(self._parse_escape(stream))
                continue
            if char < " ":
                # cJSON rejects raw control characters inside strings.
                raise ParseError(f"control character at {char.index}", char.index)
            output.append(char.value)

    def _parse_escape(self, stream: InputStream) -> str:
        escape = stream.next_char()
        if escape.is_eof:
            raise ParseError(f"unterminated escape at {escape.index}", escape.index)
        if escape == "b":
            return "\b"
        if escape == "f":
            return "\f"
        if escape == "n":
            return "\n"
        if escape == "r":
            return "\r"
        if escape == "t":
            return "\t"
        if escape == '"':
            return '"'
        if escape == "\\":
            return "\\"
        if escape == "/":
            return "/"
        if escape == "u":
            return self._parse_utf16(stream)
        raise ParseError(f"invalid escape at {escape.index}", escape.index)

    def _parse_hex4(self, stream: InputStream) -> int:
        """Four hex digits -> integer.  Taint ends here (implicit flow)."""
        value = 0
        for _ in range(4):
            digit = stream.next_char()
            if digit.is_eof or not digit.isxdigit():
                raise ParseError(f"invalid \\u escape at {digit.index}", digit.index)
            value = value * 16 + digit.hex_value()
        return value

    def _parse_utf16(self, stream: InputStream) -> str:
        """cJSON utf16_literal_to_utf8, surrogate pairs included.

        All comparisons below are over plain ints: the fuzzer cannot see
        them, which reproduces the paper's missed-feature observation.
        """
        first = self._parse_hex4(stream)
        if 0xDC00 <= first <= 0xDFFF:
            raise ParseError(f"lone low surrogate at {stream.pos}", stream.pos)
        if 0xD800 <= first <= 0xDBFF:
            backslash = stream.next_char()
            marker = stream.next_char()
            if backslash != "\\" or marker != "u":
                raise ParseError(
                    f"missing low surrogate at {stream.pos}", stream.pos
                )
            second = self._parse_hex4(stream)
            if not 0xDC00 <= second <= 0xDFFF:
                raise ParseError(
                    f"invalid low surrogate at {stream.pos}", stream.pos
                )
            codepoint = 0x10000 + (((first & 0x3FF) << 10) | (second & 0x3FF))
            return chr(codepoint)
        return chr(first)

    # ------------------------------------------------------------------ #
    # Numbers (cJSON parse_number)
    # ------------------------------------------------------------------ #

    def _parse_number(self, stream: InputStream) -> float:
        collected = 0
        while collected < 63:
            char = stream.peek(collected)
            if char.is_eof or not switch_on(char, _NUMBER_CHARS):
                break
            collected += 1
        text = stream.text[stream.pos : stream.pos + collected]
        consumed = self._strtod_prefix(text)
        if consumed == 0:
            raise ParseError(f"invalid number at {stream.pos}", stream.pos)
        # strtod semantics: only the parseable prefix is consumed; whatever
        # the switch collected beyond it stays in the stream and usually
        # triggers a parse error one level up — exactly like cJSON.
        value = float(text[:consumed])
        stream.pos += consumed
        return value

    @staticmethod
    def _strtod_prefix(text: str) -> int:
        """Length of the longest prefix of ``text`` that C strtod accepts."""
        best = 0
        for end in range(1, len(text) + 1):
            prefix = text[:end]
            if prefix in ("+", "-"):
                continue
            try:
                float(prefix)
            except ValueError:
                continue
            # strtod does not accept trailing 'e'/'E'/sign; float() already
            # rejects those, so any success here is a real prefix.
            best = end
        return best

    # ------------------------------------------------------------------ #
    # Arrays and objects
    # ------------------------------------------------------------------ #

    def _parse_array(self, stream: InputStream, depth: int) -> List[JsonValue]:
        opening = stream.next_char()
        if opening != "[":
            raise ParseError(f"expected '[' at {opening.index}", opening.index)
        self._skip_whitespace(stream)
        items: List[JsonValue] = []
        if stream.peek() == "]":
            stream.next_char()
            return items
        while True:
            self._skip_whitespace(stream)
            items.append(self._parse_value(stream, depth + 1))
            self._skip_whitespace(stream)
            separator = stream.next_char()
            if separator == ",":
                continue
            if separator == "]":
                return items
            raise ParseError(
                f"expected ',' or ']' at {separator.index}", separator.index
            )

    def _parse_object(self, stream: InputStream, depth: int) -> Dict[str, JsonValue]:
        opening = stream.next_char()
        if opening != "{":
            raise ParseError(f"expected '{{' at {opening.index}", opening.index)
        self._skip_whitespace(stream)
        members: Dict[str, JsonValue] = {}
        if stream.peek() == "}":
            stream.next_char()
            return members
        while True:
            self._skip_whitespace(stream)
            key = self._parse_string(stream)
            self._skip_whitespace(stream)
            colon = stream.next_char()
            if colon != ":":
                raise ParseError(f"expected ':' at {colon.index}", colon.index)
            self._skip_whitespace(stream)
            members[key] = self._parse_value(stream, depth + 1)
            self._skip_whitespace(stream)
            separator = stream.next_char()
            if separator == ",":
                continue
            if separator == "}":
                return members
            raise ParseError(
                f"expected ',' or '}}' at {separator.index}", separator.index
            )

    # ------------------------------------------------------------------ #
    # Whitespace (cJSON buffer_skip_whitespace: anything <= ' ')
    # ------------------------------------------------------------------ #

    def _skip_whitespace(self, stream: InputStream) -> None:
        while True:
            char = stream.peek()
            if char.is_eof or not char <= " ":
                return
            stream.next_char()
