"""Evaluation subjects.

The paper evaluates on five C parsers of increasing input complexity
(Table 1): inih (INI files), csvparser (CSV), cJSON (JSON), tinyC (a C
subset) and mjs (a JavaScript subset), plus the arithmetic-expression parser
used for the §2 walkthrough.  Each is re-implemented here as a
character-at-a-time recursive-descent parser over
:class:`~repro.runtime.stream.InputStream`, mirroring the upstream control
flow (same tokens, keywords and grammar subset) so that the comparison trace
pFuzzer observes matches the one the paper's instrumentation produced.
"""

from repro.subjects.base import Subject
from repro.subjects.registry import SUBJECT_NAMES, load_subject

__all__ = ["Subject", "load_subject", "SUBJECT_NAMES"]
