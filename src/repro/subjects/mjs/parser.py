"""Recursive-descent parser for the mjs subset.

A classic one-token-lookahead parser with automatic semicolon insertion: a
statement may end with ``;``, with a line terminator before the next token,
with ``}`` or with EOF — mirroring mjs's newline handling.  All rejection
happens by raising :class:`~repro.runtime.errors.ParseError` at the first
offending token.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.mjs import ast
from repro.subjects.mjs.lexer import MjsLexer
from repro.subjects.mjs.tokens import TokKind, Token
from repro.taint.bridge import record_token_expectation

#: Binary operator precedence, higher binds tighter.
_BINARY_PRECEDENCE = {
    "|": 1,
    "^": 2,
    "&": 3,
    "==": 4,
    "!=": 4,
    "===": 4,
    "!==": 4,
    "<": 5,
    "<=": 5,
    ">": 5,
    ">=": 5,
    "in": 5,
    "instanceof": 5,
    "<<": 6,
    ">>": 6,
    ">>>": 6,
    "+": 7,
    "-": 7,
    "*": 8,
    "/": 8,
    "%": 8,
}

_ASSIGN_OPS = frozenset(
    {
        "=",
        "+=",
        "-=",
        "*=",
        "/=",
        "%=",
        "<<=",
        ">>=",
        ">>>=",
        "&=",
        "|=",
        "^=",
        "&&=",
        "||=",
    }
)

_UNARY_PUNCT = frozenset({"!", "~", "+", "-"})


class MjsParser:
    """Parses one program from an input stream."""

    #: Recursion guard for pathological nesting such as ``((((((...`` —
    #: the analogue of mjs's bounded parser stack.  Each expression level
    #: costs ~10 Python frames, so this stays far below the interpreter's
    #: recursion limit.
    max_depth = 64

    def __init__(self, stream: InputStream, token_bridge: bool = False) -> None:
        self.lexer = MjsLexer(stream)
        self.token_bridge = token_bridge
        self.tok: Token = self.lexer.next_token()
        self._peeked: Optional[Token] = None
        self._depth = 0

    # ------------------------------------------------------------------ #
    # Token plumbing
    # ------------------------------------------------------------------ #

    def _advance(self) -> Token:
        consumed = self.tok
        if self._peeked is not None:
            self.tok = self._peeked
            self._peeked = None
        else:
            self.tok = self.lexer.next_token()
        return consumed

    def _peek(self) -> Token:
        if self._peeked is None:
            self._peeked = self.lexer.next_token()
        return self._peeked

    def _error(self, message: str) -> ParseError:
        return ParseError(f"{message} at {self.tok.index}", self.tok.index)

    def _bridge(self, expected_spelling: str, matched: bool) -> None:
        """§7.2 token-taint bridging (opt-in): report the token-kind check
        as a string comparison at the current token's input index."""
        if self.token_bridge:
            record_token_expectation(
                self.tok.index, self.tok.text, expected_spelling, matched
            )

    def _expect_punct(self, text: str) -> Token:
        self._bridge(text, self.tok.is_punct(text))
        if not self.tok.is_punct(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        self._bridge(text, self.tok.is_keyword(text))
        if not self.tok.is_keyword(text):
            raise self._error(f"expected {text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        self._bridge("a", self.tok.kind is TokKind.IDENT)
        if self.tok.kind is not TokKind.IDENT:
            raise self._error("expected identifier")
        return self._advance()

    def _consume_semicolon(self) -> None:
        """``;`` or an automatically inserted one (newline / ``}`` / EOF)."""
        if self.tok.is_punct(";"):
            self._advance()
            return
        if self.tok.kind is TokKind.EOF or self.tok.is_punct("}"):
            return
        if self.tok.nl_before:
            return
        self._bridge(";", False)
        raise self._error("expected ';'")

    # ------------------------------------------------------------------ #
    # Program and statements
    # ------------------------------------------------------------------ #

    def parse_program(self) -> ast.Program:
        body: List[ast.Node] = []
        while self.tok.kind is not TokKind.EOF:
            body.append(self.parse_statement())
        return ast.Program(body)

    def parse_statement(self) -> ast.Node:
        self._depth += 1
        try:
            if self._depth > self.max_depth:
                raise self._error("statement nested too deeply")
            return self._parse_statement_inner()
        finally:
            self._depth -= 1

    def _parse_statement_inner(self) -> ast.Node:
        tok = self.tok
        if tok.kind is TokKind.PUNCT:
            if tok.text == "{":
                return self._block_statement()
            if tok.text == ";":
                self._advance()
                return ast.EmptyStmt()
        if tok.kind is TokKind.KEYWORD:
            handler = {
                "var": self._var_statement,
                "let": self._var_statement,
                "const": self._var_statement,
                "if": self._if_statement,
                "while": self._while_statement,
                "do": self._do_statement,
                "for": self._for_statement,
                "break": self._break_statement,
                "continue": self._continue_statement,
                "return": self._return_statement,
                "throw": self._throw_statement,
                "try": self._try_statement,
                "switch": self._switch_statement,
                "with": self._with_statement,
                "debugger": self._debugger_statement,
                "function": self._function_declaration,
            }.get(tok.text)
            if handler is not None:
                return handler()
        expr = self.parse_expression()
        self._consume_semicolon()
        return ast.ExpressionStmt(expr)

    def _block_statement(self) -> ast.BlockStmt:
        self._expect_punct("{")
        body: List[ast.Node] = []
        while not self.tok.is_punct("}"):
            if self.tok.kind is TokKind.EOF:
                raise self._error("unterminated block")
            body.append(self.parse_statement())
        self._advance()
        return ast.BlockStmt(body)

    def _var_statement(self) -> ast.VarDecl:
        kind = self._advance().text
        declarations: List[Tuple[str, Optional[ast.Node]]] = []
        while True:
            name = self._expect_ident().text
            init: Optional[ast.Node] = None
            if self.tok.is_punct("="):
                self._advance()
                init = self.parse_assignment()
            declarations.append((name, init))
            if self.tok.is_punct(","):
                self._advance()
                continue
            break
        self._consume_semicolon()
        return ast.VarDecl(kind, declarations)

    def _if_statement(self) -> ast.IfStmt:
        self._expect_keyword("if")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        consequent = self.parse_statement()
        alternate: Optional[ast.Node] = None
        if self.tok.is_keyword("else"):
            self._advance()
            alternate = self.parse_statement()
        return ast.IfStmt(test, consequent, alternate)

    def _while_statement(self) -> ast.WhileStmt:
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        return ast.WhileStmt(test, self.parse_statement())

    def _do_statement(self) -> ast.DoWhileStmt:
        self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        self._consume_semicolon()
        return ast.DoWhileStmt(body, test)

    def _for_statement(self) -> ast.Node:
        self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[ast.Node] = None
        if self.tok.kind is TokKind.KEYWORD and self.tok.text in ("var", "let", "const"):
            decl_kind = self._advance().text
            name = self._expect_ident().text
            if self.tok.is_keyword("in") or self.tok.is_keyword("of"):
                loop_kind = self._advance().text
                iterable = self.parse_expression()
                self._expect_punct(")")
                return ast.ForInStmt(decl_kind, name, loop_kind, iterable, self.parse_statement())
            init = self._finish_var_decl(decl_kind, name)
        elif not self.tok.is_punct(";"):
            # "for (x in obj)" / "for (x of arr)" without a declaration: the
            # grammar's [NoIn] restriction, resolved with one token of
            # lookahead before expression parsing would swallow the "in".
            if self.tok.kind is TokKind.IDENT and (
                self._peek().is_keyword("in") or self._peek().is_keyword("of")
            ):
                name = self._advance().text
                loop_kind = self._advance().text
                iterable = self.parse_expression()
                self._expect_punct(")")
                return ast.ForInStmt(None, name, loop_kind, iterable, self.parse_statement())
            init = ast.ExpressionStmt(self.parse_expression())
        self._expect_punct(";")
        test: Optional[ast.Node] = None
        if not self.tok.is_punct(";"):
            test = self.parse_expression()
        self._expect_punct(";")
        update: Optional[ast.Node] = None
        if not self.tok.is_punct(")"):
            update = self.parse_expression()
        self._expect_punct(")")
        return ast.ForStmt(init, test, update, self.parse_statement())

    def _finish_var_decl(self, kind: str, first_name: str) -> ast.VarDecl:
        """Remaining declarators of a ``for (var x = ..`` style init."""
        declarations: List[Tuple[str, Optional[ast.Node]]] = []
        name = first_name
        while True:
            init: Optional[ast.Node] = None
            if self.tok.is_punct("="):
                self._advance()
                init = self.parse_assignment()
            declarations.append((name, init))
            if self.tok.is_punct(","):
                self._advance()
                name = self._expect_ident().text
                continue
            return ast.VarDecl(kind, declarations)

    def _break_statement(self) -> ast.BreakStmt:
        self._expect_keyword("break")
        self._consume_semicolon()
        return ast.BreakStmt()

    def _continue_statement(self) -> ast.ContinueStmt:
        self._expect_keyword("continue")
        self._consume_semicolon()
        return ast.ContinueStmt()

    def _return_statement(self) -> ast.ReturnStmt:
        self._expect_keyword("return")
        value: Optional[ast.Node] = None
        if (
            not self.tok.is_punct(";")
            and not self.tok.is_punct("}")
            and self.tok.kind is not TokKind.EOF
            and not self.tok.nl_before
        ):
            value = self.parse_expression()
        self._consume_semicolon()
        return ast.ReturnStmt(value)

    def _throw_statement(self) -> ast.ThrowStmt:
        self._expect_keyword("throw")
        if self.tok.nl_before:
            # Restricted production: no line terminator after "throw".
            raise self._error("illegal newline after throw")
        value = self.parse_expression()
        self._consume_semicolon()
        return ast.ThrowStmt(value)

    def _try_statement(self) -> ast.TryStmt:
        self._expect_keyword("try")
        block = self._block_statement().body
        catch_param: Optional[str] = None
        catch_body: Optional[List[ast.Node]] = None
        finally_body: Optional[List[ast.Node]] = None
        if self.tok.is_keyword("catch"):
            self._advance()
            self._expect_punct("(")
            catch_param = self._expect_ident().text
            self._expect_punct(")")
            catch_body = self._block_statement().body
        if self.tok.is_keyword("finally"):
            self._advance()
            finally_body = self._block_statement().body
        if catch_body is None and finally_body is None:
            raise self._error("try without catch or finally")
        return ast.TryStmt(block, catch_param, catch_body, finally_body)

    def _switch_statement(self) -> ast.SwitchStmt:
        self._expect_keyword("switch")
        self._expect_punct("(")
        discriminant = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[ast.SwitchCase] = []
        saw_default = False
        while not self.tok.is_punct("}"):
            if self.tok.is_keyword("case"):
                self._advance()
                test: Optional[ast.Node] = self.parse_expression()
            elif self.tok.is_keyword("default"):
                if saw_default:
                    raise self._error("duplicate default")
                saw_default = True
                self._advance()
                test = None
            else:
                raise self._error("expected 'case' or 'default'")
            self._expect_punct(":")
            body: List[ast.Node] = []
            while (
                not self.tok.is_punct("}")
                and not self.tok.is_keyword("case")
                and not self.tok.is_keyword("default")
            ):
                if self.tok.kind is TokKind.EOF:
                    raise self._error("unterminated switch")
                body.append(self.parse_statement())
            cases.append(ast.SwitchCase(test, body))
        self._advance()
        return ast.SwitchStmt(discriminant, cases)

    def _with_statement(self) -> ast.WithStmt:
        self._expect_keyword("with")
        self._expect_punct("(")
        obj = self.parse_expression()
        self._expect_punct(")")
        return ast.WithStmt(obj, self.parse_statement())

    def _debugger_statement(self) -> ast.DebuggerStmt:
        self._expect_keyword("debugger")
        self._consume_semicolon()
        return ast.DebuggerStmt()

    def _function_declaration(self) -> ast.FunctionDecl:
        self._expect_keyword("function")
        name = self._expect_ident().text
        params = self._param_list()
        body = self._block_statement().body
        return ast.FunctionDecl(name, params, body)

    def _param_list(self) -> List[str]:
        self._expect_punct("(")
        params: List[str] = []
        if not self.tok.is_punct(")"):
            while True:
                params.append(self._expect_ident().text)
                if self.tok.is_punct(","):
                    self._advance()
                    continue
                break
        self._expect_punct(")")
        return params

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def parse_expression(self) -> ast.Node:
        first = self.parse_assignment()
        if not self.tok.is_punct(","):
            return first
        items = [first]
        while self.tok.is_punct(","):
            self._advance()
            items.append(self.parse_assignment())
        return ast.SequenceExpr(items)

    def parse_assignment(self) -> ast.Node:
        self._depth += 1
        try:
            return self._parse_assignment_inner()
        finally:
            self._depth -= 1

    def _parse_assignment_inner(self) -> ast.Node:
        if self._depth > self.max_depth:
            raise self._error("expression nested too deeply")
        target = self._conditional()
        if self.tok.kind is TokKind.PUNCT and self.tok.text in _ASSIGN_OPS:
            if not isinstance(target, (ast.Identifier, ast.MemberExpr, ast.IndexExpr)):
                raise self._error("invalid assignment target")
            op = self._advance().text
            value = self.parse_assignment()
            return ast.AssignExpr(op, target, value)
        return target

    def _conditional(self) -> ast.Node:
        test = self._logical_or()
        if not self.tok.is_punct("?"):
            return test
        self._advance()
        consequent = self.parse_assignment()
        self._expect_punct(":")
        alternate = self.parse_assignment()
        return ast.ConditionalExpr(test, consequent, alternate)

    def _logical_or(self) -> ast.Node:
        left = self._logical_and()
        while self.tok.is_punct("||"):
            self._advance()
            left = ast.LogicalExpr("||", left, self._logical_and())
        return left

    def _logical_and(self) -> ast.Node:
        left = self._binary(1)
        while self.tok.is_punct("&&"):
            self._advance()
            left = ast.LogicalExpr("&&", left, self._binary(1))
        return left

    def _binary(self, min_precedence: int) -> ast.Node:
        left = self._unary()
        while True:
            op = self._binary_op()
            if op is None:
                return left
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._binary(precedence + 1)
            left = ast.BinaryExpr(op, left, right)

    def _binary_op(self) -> Optional[str]:
        tok = self.tok
        if tok.kind is TokKind.PUNCT and tok.text in _BINARY_PRECEDENCE:
            return tok.text
        if tok.kind is TokKind.KEYWORD and tok.text in ("in", "instanceof"):
            return tok.text
        return None

    def _unary(self) -> ast.Node:
        tok = self.tok
        if tok.kind is TokKind.PUNCT:
            if tok.text in _UNARY_PUNCT:
                op = self._advance().text
                return ast.UnaryExpr(op, self._unary())
            if tok.text in ("++", "--"):
                op = self._advance().text
                operand = self._unary()
                if not isinstance(operand, (ast.Identifier, ast.MemberExpr, ast.IndexExpr)):
                    raise self._error("invalid increment target")
                return ast.UpdateExpr(op, operand, prefix=True)
        if tok.kind is TokKind.KEYWORD:
            if tok.text in ("typeof", "void", "delete"):
                op = self._advance().text
                return ast.UnaryExpr(op, self._unary())
            if tok.text == "new":
                self._advance()
                callee = self._postfix(self._primary(), allow_call=False)
                args: List[ast.Node] = []
                if self.tok.is_punct("("):
                    args = self._arguments()
                return self._postfix(ast.NewExpr(callee, args), allow_call=True)
        return self._postfix_with_update()

    def _postfix_with_update(self) -> ast.Node:
        expr = self._postfix(self._primary(), allow_call=True)
        tok = self.tok
        if (
            tok.kind is TokKind.PUNCT
            and tok.text in ("++", "--")
            and not tok.nl_before
            and isinstance(expr, (ast.Identifier, ast.MemberExpr, ast.IndexExpr))
        ):
            op = self._advance().text
            return ast.UpdateExpr(op, expr, prefix=False)
        return expr

    def _postfix(self, expr: ast.Node, allow_call: bool) -> ast.Node:
        while True:
            if self.tok.is_punct("."):
                self._advance()
                name_tok = self._expect_ident()
                expr = ast.MemberExpr(expr, name_tok.name)
            elif self.tok.is_punct("["):
                self._advance()
                index = self.parse_expression()
                self._expect_punct("]")
                expr = ast.IndexExpr(expr, index)
            elif allow_call and self.tok.is_punct("("):
                expr = ast.CallExpr(expr, self._arguments())
            else:
                return expr

    def _arguments(self) -> List[ast.Node]:
        self._expect_punct("(")
        args: List[ast.Node] = []
        if not self.tok.is_punct(")"):
            while True:
                args.append(self.parse_assignment())
                if self.tok.is_punct(","):
                    self._advance()
                    continue
                break
        self._expect_punct(")")
        return args

    def _primary(self) -> ast.Node:
        tok = self.tok
        if tok.kind is TokKind.NUMBER:
            self._advance()
            return ast.NumberLit(tok.number)
        if tok.kind is TokKind.STRING:
            self._advance()
            return ast.StringLit(tok.string)
        if tok.kind is TokKind.IDENT:
            if self._peek().is_punct("=>"):
                return self._arrow(tok)
            self._advance()
            assert tok.name is not None
            return ast.Identifier(tok.name)
        if tok.kind is TokKind.KEYWORD:
            keyword = tok.text
            if keyword == "true":
                self._advance()
                return ast.BoolLit(True)
            if keyword == "false":
                self._advance()
                return ast.BoolLit(False)
            if keyword == "null":
                self._advance()
                return ast.NullLit()
            if keyword == "undefined":
                self._advance()
                return ast.UndefinedLit()
            if keyword == "NaN":
                self._advance()
                return ast.NanLit()
            if keyword == "this":
                self._advance()
                return ast.ThisExpr()
            if keyword == "function":
                return self._function_expression()
            raise self._error(f"unexpected keyword {keyword!r}")
        if tok.is_punct("("):
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if tok.is_punct("["):
            return self._array_literal()
        if tok.is_punct("{"):
            return self._object_literal()
        raise self._error("unexpected token")

    def _arrow(self, param_tok: Token) -> ast.Node:
        """Single-parameter arrow function: ``x => expr`` / ``x => { ... }``."""
        self._advance()  # identifier
        self._expect_punct("=>")
        if self.tok.is_punct("{"):
            return ast.ArrowExpr(param_tok.text, None, self._block_statement().body)
        return ast.ArrowExpr(param_tok.text, self.parse_assignment())

    def _function_expression(self) -> ast.FunctionExpr:
        self._expect_keyword("function")
        name: Optional[str] = None
        if self.tok.kind is TokKind.IDENT:
            name = self._advance().text
        params = self._param_list()
        body = self._block_statement().body
        return ast.FunctionExpr(name, params, body)

    def _array_literal(self) -> ast.ArrayLit:
        self._expect_punct("[")
        items: List[ast.Node] = []
        if not self.tok.is_punct("]"):
            while True:
                items.append(self.parse_assignment())
                if self.tok.is_punct(","):
                    self._advance()
                    if self.tok.is_punct("]"):
                        break
                    continue
                break
        self._expect_punct("]")
        return ast.ArrayLit(items)

    def _object_literal(self) -> ast.ObjectLit:
        self._expect_punct("{")
        members: List[Tuple[str, ast.Node]] = []
        if not self.tok.is_punct("}"):
            while True:
                key = self._object_key()
                self._expect_punct(":")
                members.append((key, self.parse_assignment()))
                if self.tok.is_punct(","):
                    self._advance()
                    if self.tok.is_punct("}"):
                        break
                    continue
                break
        self._expect_punct("}")
        return ast.ObjectLit(members)

    def _object_key(self) -> str:
        tok = self.tok
        if tok.kind is TokKind.IDENT:
            self._advance()
            return tok.text
        if tok.kind is TokKind.STRING:
            self._advance()
            return tok.string
        if tok.kind is TokKind.NUMBER:
            self._advance()
            return tok.text
        if tok.kind is TokKind.KEYWORD:
            self._advance()
            return tok.text
        raise self._error("invalid object key")


def parse_mjs(stream: InputStream) -> ast.Program:
    """Parse a complete mjs program from ``stream``."""
    return MjsParser(stream).parse_program()
