"""Runtime values, scopes and JavaScript coercions for the mjs subset.

Values map onto Python as: JS numbers are ``float``, strings are ``str``,
booleans are ``bool``, ``null`` is ``None``, ``undefined`` is the
:data:`UNDEFINED` singleton, and objects/arrays/functions are the wrapper
classes below.  The coercion helpers implement the (sloppy, forgiving)
semantics the paper's evaluation relies on: with semantic checking disabled,
no runtime value combination rejects an input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.taint.tstr import TaintedStr
from repro.taint.wrappers import strcmp


class _Undefined:
    """The singleton ``undefined`` value."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undefined"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()


class JSObject:
    """A plain JavaScript object: ordered string-keyed properties."""

    def __init__(self, props: Optional[Dict[str, object]] = None) -> None:
        self.props: Dict[str, object] = dict(props or {})

    def __repr__(self) -> str:
        return f"JSObject({self.props!r})"


class JSArray:
    """A JavaScript array."""

    def __init__(self, items: Optional[List[object]] = None) -> None:
        self.items: List[object] = list(items or [])

    def __repr__(self) -> str:
        return f"JSArray({self.items!r})"


@dataclass
class JSFunction:
    """A user-defined function closing over its defining scope."""

    name: Optional[str]
    params: List[str]
    body: List[object]
    closure: "Scope"
    is_arrow: bool = False
    #: Arrow functions with an expression body store it here.
    expr_body: Optional[object] = None

    def __repr__(self) -> str:
        return f"<function {self.name or '(anonymous)'}>"


@dataclass
class NativeFunction:
    """A builtin; ``fn(interp, this, args) -> value``."""

    name: str
    fn: Callable

    def __repr__(self) -> str:
        return f"<native {self.name}>"


class NativeNamespace:
    """A builtin object whose property lookup goes through ``strcmp``.

    mjs resolves property names with C string comparisons; routing builtin
    namespaces (``JSON``, the global builtins) through
    :func:`repro.taint.wrappers.strcmp` makes names like ``stringify``
    discoverable by the fuzzer, exactly as in the paper's subject.
    """

    def __init__(self, name: str, members: Dict[str, object]) -> None:
        self.name = name
        self.members = members

    def lookup(self, prop: TaintedStr) -> object:
        for member_name, value in self.members.items():
            if strcmp(prop, member_name) == 0:
                return value
        return UNDEFINED

    def __repr__(self) -> str:
        return f"<namespace {self.name}>"


class Scope:
    """A lexical scope chain with JS-sloppy global assignment."""

    def __init__(self, parent: Optional["Scope"] = None) -> None:
        self.vars: Dict[str, object] = {}
        self.parent = parent

    def declare(self, name: str, value: object) -> None:
        self.vars[name] = value

    # Chain traversal is recursive so that subclasses (ObjectScope) keep
    # their behaviour when they appear in the *middle* of a scope chain.

    def has(self, name: str) -> bool:
        if name in self.vars:
            return True
        return self.parent.has(name) if self.parent is not None else False

    def get(self, name: str) -> object:
        if name in self.vars:
            return self.vars[name]
        return self.parent.get(name) if self.parent is not None else UNDEFINED

    def set(self, name: str, value: object) -> None:
        if name in self.vars:
            self.vars[name] = value
            return
        if self.parent is None:
            # Sloppy mode: assignment to an undeclared name creates a
            # global (semantic checking disabled, §5.1).
            self.vars[name] = value
            return
        self.parent.set(name, value)

    def global_scope(self) -> "Scope":
        scope = self
        while scope.parent is not None:
            scope = scope.parent
        return scope


class ObjectScope(Scope):
    """The scope a ``with (obj)`` statement injects."""

    def __init__(self, obj: object, parent: Scope) -> None:
        super().__init__(parent)
        self.obj = obj

    def _props(self) -> Optional[Dict[str, object]]:
        if isinstance(self.obj, JSObject):
            return self.obj.props
        return None

    def has(self, name: str) -> bool:
        props = self._props()
        if props is not None and name in props:
            return True
        return super().has(name)

    def get(self, name: str) -> object:
        props = self._props()
        if props is not None and name in props:
            return props[name]
        return super().get(name)

    def set(self, name: str, value: object) -> None:
        props = self._props()
        if props is not None and name in props:
            props[name] = value
            return
        super().set(name, value)


# ---------------------------------------------------------------------- #
# Coercions
# ---------------------------------------------------------------------- #


def truthy(value: object) -> bool:
    """JavaScript ToBoolean."""
    if value is UNDEFINED or value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        return value != 0.0 and not math.isnan(value)
    if isinstance(value, str):
        return bool(value)
    return True


def to_number(value: object) -> float:
    """JavaScript ToNumber (NaN-propagating, never raising)."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, float):
        return value
    if value is None:
        return 0.0
    if value is UNDEFINED:
        return math.nan
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            if text.lower().startswith(("0x", "-0x", "+0x")):
                return float(int(text, 16))
            return float(text)
        except ValueError:
            return math.nan
    return math.nan


def to_int32(value: object) -> int:
    """JavaScript ToInt32 (for bitwise operators)."""
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    result = int(number) & 0xFFFFFFFF
    if result >= 0x80000000:
        result -= 0x100000000
    return result


def to_uint32(value: object) -> int:
    """JavaScript ToUint32 (for ``>>>``)."""
    number = to_number(value)
    if math.isnan(number) or math.isinf(number):
        return 0
    return int(number) & 0xFFFFFFFF


def format_number(number: float) -> str:
    """JavaScript number-to-string."""
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "Infinity" if number > 0 else "-Infinity"
    if number == int(number) and abs(number) < 1e21:
        return str(int(number))
    return repr(number)


def to_string(value: object) -> str:
    """JavaScript ToString."""
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return format_number(value)
    if isinstance(value, str):
        return value
    if isinstance(value, JSArray):
        return ",".join(
            "" if item is UNDEFINED or item is None else to_string(item)
            for item in value.items
        )
    if isinstance(value, JSObject):
        return "[object Object]"
    if isinstance(value, (JSFunction, NativeFunction)):
        return f"function {getattr(value, 'name', '') or ''}() {{...}}"
    return str(value)


def type_of(value: object) -> str:
    """JavaScript ``typeof``."""
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "object"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, (JSFunction, NativeFunction)):
        return "function"
    return "object"


def strict_equals(left: object, right: object) -> bool:
    """JavaScript ``===``."""
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, float) and isinstance(right, float):
        return left == right  # NaN != NaN falls out of float semantics
    if type(left) is not type(right):
        if (left is UNDEFINED) != (right is UNDEFINED):
            return False
        if (left is None) != (right is None):
            return False
    if isinstance(left, (JSObject, JSArray, JSFunction, NativeFunction, NativeNamespace)):
        return left is right
    return left == right


def loose_equals(left: object, right: object) -> bool:
    """JavaScript ``==`` (the common coercion cases)."""
    if (left is None or left is UNDEFINED) and (right is None or right is UNDEFINED):
        return True
    if left is None or left is UNDEFINED or right is None or right is UNDEFINED:
        return False
    if isinstance(left, bool):
        return loose_equals(to_number(left), right)
    if isinstance(right, bool):
        return loose_equals(left, to_number(right))
    if isinstance(left, float) and isinstance(right, str):
        return left == to_number(right)
    if isinstance(left, str) and isinstance(right, float):
        return to_number(left) == right
    if isinstance(left, (JSObject, JSArray)) and isinstance(right, (str, float)):
        return loose_equals(to_string(left), right)
    if isinstance(right, (JSObject, JSArray)) and isinstance(left, (str, float)):
        return loose_equals(left, to_string(right))
    return strict_equals(left, right)
