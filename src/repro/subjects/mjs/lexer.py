"""Newline-sensitive lexer for the mjs subset.

Everything the lexer decides is decided by *recorded* comparisons on tainted
characters: punctuator extension (``>`` → ``>>`` → ``>>>`` → ``>>>=``) uses
per-character equality tests, character classes go through the ``is*``
predicates, and identifier spellings are checked against the reserved-word
table with :func:`repro.taint.wrappers.strcmp` — the dynamic ``strcmp``
monitoring the paper credits for pFuzzer's keyword discovery (§6).
"""

from __future__ import annotations

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.mjs.tokens import (
    KEYWORDS,
    MULTI_PUNCT,
    SINGLE_PUNCT,
    TokKind,
    Token,
)
from repro.taint.tchar import TChar
from repro.taint.tstr import TaintedStr
from repro.taint.wrappers import strcmp

_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "b": "\b",
    "f": "\f",
    "v": "\v",
    "0": "\0",
    "\\": "\\",
    "'": "'",
    '"': '"',
    "/": "/",
}


class MjsLexer:
    """Produces one :class:`~repro.subjects.mjs.tokens.Token` at a time."""

    def __init__(self, stream: InputStream) -> None:
        self.stream = stream

    # ------------------------------------------------------------------ #
    # Whitespace and comments
    # ------------------------------------------------------------------ #

    def _skip_space(self) -> bool:
        """Skip whitespace and comments; report whether a newline was seen."""
        stream = self.stream
        saw_newline = False
        while True:
            char = stream.peek()
            if char.is_eof:
                return saw_newline
            if char == "\n":
                saw_newline = True
                stream.next_char()
                continue
            if char.in_set(" \t\r\v\f"):
                stream.next_char()
                continue
            if char == "/":
                follower = stream.peek(1)
                if follower == "/":
                    stream.next_char()
                    stream.next_char()
                    while True:
                        char = stream.peek()
                        if char.is_eof:
                            break
                        stream.next_char()
                        if char == "\n":
                            saw_newline = True
                            break
                    continue
                if follower == "*":
                    stream.next_char()
                    stream.next_char()
                    saw_newline |= self._skip_block_comment()
                    continue
            return saw_newline

    def _skip_block_comment(self) -> bool:
        stream = self.stream
        saw_newline = False
        while True:
            char = stream.next_char()
            if char.is_eof:
                raise ParseError(f"unterminated comment at {char.index}", char.index)
            if char == "\n":
                saw_newline = True
            if char == "*" and stream.peek() == "/":
                stream.next_char()
                return saw_newline

    # ------------------------------------------------------------------ #
    # Token dispatch
    # ------------------------------------------------------------------ #

    def next_token(self) -> Token:
        nl_before = self._skip_space()
        stream = self.stream
        char = stream.peek()
        if char.is_eof:
            return Token(TokKind.EOF, "", char.index, nl_before=nl_before)
        if char == '"' or char == "'":
            token = self._string(char)
        elif char.isdigit():
            token = self._number()
        elif self._is_ident_start(char):
            token = self._word()
        elif char.in_set(SINGLE_PUNCT):
            token = self._punct()
        else:
            raise ParseError(f"unexpected character at {char.index}", char.index)
        token.nl_before = nl_before
        return token

    # ------------------------------------------------------------------ #
    # Punctuators
    # ------------------------------------------------------------------ #

    def _punct(self) -> Token:
        stream = self.stream
        first = stream.next_char()
        index = first.index
        # Greedy longest-match over the multi-character punctuators that
        # start with this character; each attempted extension is a recorded
        # per-character comparison.
        for candidate in MULTI_PUNCT:
            if candidate[0] != first.value:
                continue
            matched = True
            for offset in range(1, len(candidate)):
                follower = stream.peek(offset - 1)
                if follower.is_eof or not follower == candidate[offset]:
                    matched = False
                    break
            if matched:
                for _ in range(len(candidate) - 1):
                    stream.next_char()
                return Token(TokKind.PUNCT, candidate, index)
        return Token(TokKind.PUNCT, first.value, index)

    # ------------------------------------------------------------------ #
    # Literals
    # ------------------------------------------------------------------ #

    def _number(self) -> Token:
        stream = self.stream
        start = stream.peek()
        index = start.index
        if start == "0" and (stream.peek(1) == "x" or stream.peek(1) == "X"):
            stream.next_char()
            stream.next_char()
            value = 0
            digits = 0
            while True:
                char = stream.peek()
                if char.is_eof or not char.isxdigit():
                    break
                stream.next_char()
                value = value * 16 + char.hex_value()
                digits += 1
            if digits == 0:
                raise ParseError(f"invalid hex literal at {index}", index)
            return Token(TokKind.NUMBER, stream.text[index : stream.pos], index, number=float(value))
        text = ""
        while True:
            char = stream.peek()
            if char.is_eof or not char.isdigit():
                break
            stream.next_char()
            text += char.value
        if stream.peek() == ".":
            stream.next_char()
            text += "."
            while True:
                char = stream.peek()
                if char.is_eof or not char.isdigit():
                    break
                stream.next_char()
                text += char.value
        char = stream.peek()
        if char == "e" or char == "E":
            stream.next_char()
            text += "e"
            char = stream.peek()
            if char == "+" or char == "-":
                stream.next_char()
                text += char.value
            digits = 0
            while True:
                char = stream.peek()
                if char.is_eof or not char.isdigit():
                    break
                stream.next_char()
                text += char.value
                digits += 1
            if digits == 0:
                raise ParseError(f"invalid exponent at {stream.pos}", stream.pos)
        return Token(TokKind.NUMBER, text, index, number=float(text))

    def _string(self, quote: TChar) -> Token:
        stream = self.stream
        stream.next_char()
        index = quote.index
        value = ""
        while True:
            char = stream.next_char()
            if char.is_eof:
                raise ParseError(f"unterminated string at {char.index}", char.index)
            if char == quote.value:
                return Token(
                    TokKind.STRING,
                    stream.text[index : stream.pos],
                    index,
                    string=value,
                )
            if char == "\n":
                raise ParseError(f"newline in string at {char.index}", char.index)
            if char == "\\":
                value += self._escape()
                continue
            value += char.value

    def _escape(self) -> str:
        stream = self.stream
        escape = stream.next_char()
        if escape.is_eof:
            raise ParseError(f"unterminated escape at {escape.index}", escape.index)
        for key, decoded in _ESCAPES.items():
            if escape == key:
                return decoded
        if escape == "x":
            return chr(self._hex_digits(2))
        if escape == "u":
            return chr(self._hex_digits(4))
        raise ParseError(f"invalid escape at {escape.index}", escape.index)

    def _hex_digits(self, count: int) -> int:
        stream = self.stream
        value = 0
        for _ in range(count):
            digit = stream.next_char()
            if digit.is_eof or not digit.isxdigit():
                raise ParseError(f"invalid hex escape at {digit.index}", digit.index)
            value = value * 16 + digit.hex_value()
        return value

    # ------------------------------------------------------------------ #
    # Identifiers and keywords
    # ------------------------------------------------------------------ #

    @staticmethod
    def _is_ident_start(char: TChar) -> bool:
        return char.isalpha() or char == "_" or char == "$"

    @staticmethod
    def _is_ident_part(char: TChar) -> bool:
        return char.isalnum() or char == "_" or char == "$"

    def _word(self) -> Token:
        stream = self.stream
        index = stream.peek().index
        name = TaintedStr.empty()
        while True:
            char = stream.peek()
            if char.is_eof or not self._is_ident_part(char):
                break
            stream.next_char()
            name = name.append(char)
        # The mjs keyword check: a strcmp scan over the reserved-word table.
        for keyword in KEYWORDS:
            if strcmp(name, keyword) == 0:
                return Token(TokKind.KEYWORD, keyword, index)
        return Token(TokKind.IDENT, name.text, index, name=name)
