"""mjs-style JavaScript subset (subject "mjs", Table 1: 10,920 LoC upstream).

The paper's most complex subject is cesanta/mjs, an embedded JavaScript
engine.  This subpackage re-implements the corresponding *language surface* —
the token inventory of Table 4 (99 tokens across lengths 1–10), a newline-
sensitive lexer with a ``strcmp``-table keyword check, a recursive-descent
parser with automatic semicolon insertion, and a tree-walking interpreter
with the mjs builtins (``print``, ``load``, ``JSON.stringify``, ``Object``,
string methods) dispatched through recorded string comparisons.

Semantic checking is disabled, as in the paper's evaluation setup (§5.1):
undeclared variables read as ``undefined``, runtime type errors never reject
an input, and only *parse* errors produce a non-zero exit.
"""

from repro.subjects.mjs.subject import MjsSubject

__all__ = ["MjsSubject"]
