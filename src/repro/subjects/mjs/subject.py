"""The mjs Subject: parse, then execute best-effort.

Validity is decided by the *parser* (the paper's setup rejects inputs with a
non-zero exit on the first parse error and disables semantic checking).
Execution runs under a step budget; hangs surface as
:class:`~repro.runtime.errors.HangError`, while runtime exceptions inside the
interpreter never reject an input.
"""

from __future__ import annotations

import sys
import types
from typing import List, Tuple

from repro.runtime.errors import HangError
from repro.runtime.stream import InputStream
from repro.subjects.base import Subject
from repro.subjects.mjs.interp import Interpreter
from repro.subjects.mjs.parser import MjsParser


class MjsSubject(Subject):
    """mjs-style JavaScript subset: lexer + parser + interpreter."""

    name = "mjs"
    description = "mjs-style JavaScript engine"

    def __init__(
        self,
        max_steps: int = 200_000,
        token_bridge: bool = False,
        semantic_checks: bool = False,
    ) -> None:
        self.max_steps = max_steps
        self.token_bridge = token_bridge
        self.semantic_checks = semantic_checks

    def parse(self, stream: InputStream) -> List[str]:
        program = MjsParser(stream, token_bridge=self.token_bridge).parse_program()
        if self.semantic_checks:
            # §7.3: context-sensitive checks run after parsing; the paper
            # disables them in the evaluation, but they are implemented so
            # the limitation is demonstrable (see tests).
            from repro.subjects.mjs.semantics import SemanticChecker

            SemanticChecker().check(program)
        interpreter = Interpreter(max_steps=self.max_steps)
        try:
            return interpreter.run(program)
        except HangError:
            raise
        except RecursionError:
            # Defensive: pathological programs that out-recurse the Python
            # stack behave like hangs rather than crashing the harness.
            raise HangError(self.max_steps)
        except Exception:
            # Semantic checking disabled: runtime failures in the engine do
            # not reject a syntactically valid input.
            return interpreter.output

    def modules(self) -> Tuple[types.ModuleType, ...]:
        names = (
            "repro.subjects.mjs.lexer",
            "repro.subjects.mjs.parser",
            "repro.subjects.mjs.interp",
            "repro.subjects.mjs.builtins",
            "repro.subjects.mjs.values",
            "repro.subjects.mjs.tokens",
            "repro.subjects.mjs.ast",
        )
        return tuple(sys.modules[name] for name in names)
