"""Tree-walking interpreter for the mjs subset.

Execution is deliberately *forgiving*: with semantic checking disabled
(paper §5.1), no runtime value combination rejects an input.  Calling a
non-function yields ``undefined``, arithmetic on objects yields ``NaN``,
uncaught ``throw`` unwinds to the top without failing the run.  The only
hard stop is the step budget, which turns ``while(9);``-style hangs into
:class:`~repro.runtime.errors.HangError` (§5.2, footnote 6).
"""

from __future__ import annotations

import math
from typing import List

from repro.runtime.errors import HangError
from repro.subjects.mjs import ast
from repro.subjects.mjs.builtins import (
    get_property,
    make_global_builtins,
    set_property,
)
from repro.subjects.mjs.values import (
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    ObjectScope,
    Scope,
    format_number,
    loose_equals,
    strict_equals,
    to_int32,
    to_number,
    to_string,
    to_uint32,
    truthy,
    type_of,
)
from repro.taint.tstr import TaintedStr


class BreakSignal(Exception):
    """Unwinds to the nearest loop/switch."""


class ContinueSignal(Exception):
    """Unwinds to the nearest loop header."""


class ReturnSignal(Exception):
    """Unwinds a function call."""

    def __init__(self, value: object) -> None:
        super().__init__("return")
        self.value = value


class JSThrow(Exception):
    """A JavaScript ``throw``; carries the thrown value."""

    def __init__(self, value: object) -> None:
        super().__init__(to_string(value))
        self.value = value


class Interpreter:
    """Executes a parsed program under a step budget."""

    #: Maximum user-function call depth before a RangeError is thrown.
    max_call_depth = 60

    def __init__(self, max_steps: int = 200_000) -> None:
        self.max_steps = max_steps
        self.steps = 0
        self.call_depth = 0
        self.output: List[str] = []
        self.globals = Scope()
        self.builtins = make_global_builtins(self.output)

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def run(self, program: ast.Program) -> List[str]:
        """Execute a program; returns the collected ``print`` output."""
        try:
            for statement in program.body:
                self.exec_stmt(statement, self.globals)
        except JSThrow:
            # Uncaught exceptions do not reject the input (semantic
            # checking disabled); the parse already succeeded.
            pass
        except (BreakSignal, ContinueSignal, ReturnSignal):
            # Stray control flow at top level is ignored, like mjs's
            # tolerant top-level execution.
            pass
        return self.output

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise HangError(self.max_steps)

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def exec_stmt(self, node: ast.Node, scope: Scope) -> None:
        self._tick()
        if isinstance(node, ast.ExpressionStmt):
            self.eval_expr(node.expr, scope)
        elif isinstance(node, ast.VarDecl):
            for name, init in node.declarations:
                value = self.eval_expr(init, scope) if init is not None else UNDEFINED
                target = scope.global_scope() if node.kind == "var" else scope
                target.declare(name, value)
        elif isinstance(node, ast.BlockStmt):
            block_scope = Scope(scope)
            for statement in node.body:
                self.exec_stmt(statement, block_scope)
        elif isinstance(node, ast.EmptyStmt):
            pass
        elif isinstance(node, ast.IfStmt):
            if truthy(self.eval_expr(node.test, scope)):
                self.exec_stmt(node.consequent, scope)
            elif node.alternate is not None:
                self.exec_stmt(node.alternate, scope)
        elif isinstance(node, ast.WhileStmt):
            while truthy(self.eval_expr(node.test, scope)):
                self._tick()
                try:
                    self.exec_stmt(node.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    continue
        elif isinstance(node, ast.DoWhileStmt):
            while True:
                self._tick()
                try:
                    self.exec_stmt(node.body, scope)
                except BreakSignal:
                    break
                except ContinueSignal:
                    pass
                if not truthy(self.eval_expr(node.test, scope)):
                    break
        elif isinstance(node, ast.ForStmt):
            self._exec_for(node, scope)
        elif isinstance(node, ast.ForInStmt):
            self._exec_for_in(node, scope)
        elif isinstance(node, ast.BreakStmt):
            raise BreakSignal()
        elif isinstance(node, ast.ContinueStmt):
            raise ContinueSignal()
        elif isinstance(node, ast.ReturnStmt):
            value = (
                self.eval_expr(node.value, scope) if node.value is not None else UNDEFINED
            )
            raise ReturnSignal(value)
        elif isinstance(node, ast.ThrowStmt):
            raise JSThrow(self.eval_expr(node.value, scope))
        elif isinstance(node, ast.TryStmt):
            self._exec_try(node, scope)
        elif isinstance(node, ast.SwitchStmt):
            self._exec_switch(node, scope)
        elif isinstance(node, ast.WithStmt):
            with_scope = ObjectScope(self.eval_expr(node.obj, scope), scope)
            self.exec_stmt(node.body, with_scope)
        elif isinstance(node, ast.DebuggerStmt):
            pass
        elif isinstance(node, ast.FunctionDecl):
            function = JSFunction(node.name, node.params, node.body, scope)
            scope.declare(node.name, function)
        else:  # pragma: no cover - parser produces no other statements
            raise AssertionError(f"unknown statement {node!r}")

    def _exec_for(self, node: ast.ForStmt, scope: Scope) -> None:
        loop_scope = Scope(scope)
        if node.init is not None:
            self.exec_stmt(node.init, loop_scope)
        while node.test is None or truthy(self.eval_expr(node.test, loop_scope)):
            self._tick()
            try:
                self.exec_stmt(node.body, loop_scope)
            except BreakSignal:
                return
            except ContinueSignal:
                pass
            if node.update is not None:
                self.eval_expr(node.update, loop_scope)

    def _iterable_entries(self, value: object, kind: str) -> List[object]:
        if isinstance(value, JSObject):
            keys = list(value.props.keys())
            return keys if kind == "in" else [value.props[key] for key in keys]
        if isinstance(value, JSArray):
            if kind == "in":
                return [format_number(float(i)) for i in range(len(value.items))]
            return list(value.items)
        if isinstance(value, str):
            if kind == "in":
                return [format_number(float(i)) for i in range(len(value))]
            return list(value)
        return []

    def _exec_for_in(self, node: ast.ForInStmt, scope: Scope) -> None:
        loop_scope = Scope(scope)
        iterable = self.eval_expr(node.iterable, loop_scope)
        if node.decl_kind is not None:
            loop_scope.declare(node.target, UNDEFINED)
        for entry in self._iterable_entries(iterable, node.kind):
            self._tick()
            loop_scope.set(node.target, entry)
            try:
                self.exec_stmt(node.body, loop_scope)
            except BreakSignal:
                return
            except ContinueSignal:
                continue

    def _exec_try(self, node: ast.TryStmt, scope: Scope) -> None:
        try:
            block_scope = Scope(scope)
            for statement in node.block:
                self.exec_stmt(statement, block_scope)
        except JSThrow as thrown:
            if node.catch_body is None:
                # try/finally without catch: the finally clause runs (below)
                # and the exception keeps propagating.
                raise
            catch_scope = Scope(scope)
            if node.catch_param is not None:
                catch_scope.declare(node.catch_param, thrown.value)
            for statement in node.catch_body:
                self.exec_stmt(statement, catch_scope)
        finally:
            if node.finally_body is not None:
                finally_scope = Scope(scope)
                for statement in node.finally_body:
                    self.exec_stmt(statement, finally_scope)

    def _exec_switch(self, node: ast.SwitchStmt, scope: Scope) -> None:
        discriminant = self.eval_expr(node.discriminant, scope)
        switch_scope = Scope(scope)
        matched = False
        try:
            for case in node.cases:
                if not matched and case.test is not None:
                    if strict_equals(discriminant, self.eval_expr(case.test, switch_scope)):
                        matched = True
                if matched:
                    for statement in case.body:
                        self.exec_stmt(statement, switch_scope)
            if not matched:
                # Second pass from "default", with fallthrough.
                in_default = False
                for case in node.cases:
                    if case.test is None:
                        in_default = True
                    if in_default:
                        for statement in case.body:
                            self.exec_stmt(statement, switch_scope)
        except BreakSignal:
            return

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def eval_expr(self, node: ast.Node, scope: Scope) -> object:
        self._tick()
        if isinstance(node, ast.NumberLit):
            return node.value
        if isinstance(node, ast.StringLit):
            return node.value
        if isinstance(node, ast.BoolLit):
            return node.value
        if isinstance(node, ast.NullLit):
            return None
        if isinstance(node, ast.UndefinedLit):
            return UNDEFINED
        if isinstance(node, ast.NanLit):
            return math.nan
        if isinstance(node, ast.ThisExpr):
            return scope.get("this")
        if isinstance(node, ast.Identifier):
            return self._lookup(node.name, scope)
        if isinstance(node, ast.ArrayLit):
            return JSArray([self.eval_expr(item, scope) for item in node.items])
        if isinstance(node, ast.ObjectLit):
            obj = JSObject()
            for key, value in node.members:
                obj.props[key] = self.eval_expr(value, scope)
            return obj
        if isinstance(node, ast.FunctionExpr):
            return JSFunction(node.name, node.params, node.body, scope)
        if isinstance(node, ast.ArrowExpr):
            return JSFunction(
                None,
                [node.param],
                node.block_body or [],
                scope,
                is_arrow=True,
                expr_body=node.expr_body,
            )
        if isinstance(node, ast.UnaryExpr):
            return self._eval_unary(node, scope)
        if isinstance(node, ast.UpdateExpr):
            return self._eval_update(node, scope)
        if isinstance(node, ast.BinaryExpr):
            return self._eval_binary(
                node.op,
                self.eval_expr(node.left, scope),
                self.eval_expr(node.right, scope),
            )
        if isinstance(node, ast.LogicalExpr):
            left = self.eval_expr(node.left, scope)
            if node.op == "&&":
                return self.eval_expr(node.right, scope) if truthy(left) else left
            return left if truthy(left) else self.eval_expr(node.right, scope)
        if isinstance(node, ast.ConditionalExpr):
            if truthy(self.eval_expr(node.test, scope)):
                return self.eval_expr(node.consequent, scope)
            return self.eval_expr(node.alternate, scope)
        if isinstance(node, ast.AssignExpr):
            return self._eval_assign(node, scope)
        if isinstance(node, ast.SequenceExpr):
            value: object = UNDEFINED
            for item in node.items:
                value = self.eval_expr(item, scope)
            return value
        if isinstance(node, ast.MemberExpr):
            return get_property(self.eval_expr(node.obj, scope), node.name)
        if isinstance(node, ast.IndexExpr):
            return self._eval_index(node, scope)
        if isinstance(node, ast.CallExpr):
            return self._eval_call(node, scope)
        if isinstance(node, ast.NewExpr):
            return self._eval_new(node, scope)
        raise AssertionError(f"unknown expression {node!r}")  # pragma: no cover

    def _lookup(self, name: TaintedStr, scope: Scope) -> object:
        if scope.has(name.text):
            return scope.get(name.text)
        # Undeclared: consult the builtin table (recorded strcmp scan), then
        # fall back to undefined — semantic checking disabled.
        return self.builtins.lookup(name)

    def _eval_unary(self, node: ast.UnaryExpr, scope: Scope) -> object:
        op = node.op
        if op == "typeof":
            if isinstance(node.operand, ast.Identifier):
                return type_of(self._lookup(node.operand.name, scope))
            return type_of(self.eval_expr(node.operand, scope))
        if op == "delete":
            return self._eval_delete(node.operand, scope)
        value = self.eval_expr(node.operand, scope)
        if op == "void":
            return UNDEFINED
        if op == "!":
            return not truthy(value)
        if op == "~":
            return float(_wrap_int32(~to_int32(value)))
        if op == "-":
            return -to_number(value)
        if op == "+":
            return to_number(value)
        raise AssertionError(f"unknown unary {op}")  # pragma: no cover

    def _eval_delete(self, target: ast.Node, scope: Scope) -> bool:
        if isinstance(target, ast.MemberExpr):
            obj = self.eval_expr(target.obj, scope)
            if isinstance(obj, JSObject):
                obj.props.pop(target.name.text, None)
            return True
        if isinstance(target, ast.IndexExpr):
            obj = self.eval_expr(target.obj, scope)
            key = self.eval_expr(target.index, scope)
            if isinstance(obj, JSObject):
                obj.props.pop(to_string(key), None)
            elif isinstance(obj, JSArray):
                index = int(to_number(key)) if not math.isnan(to_number(key)) else -1
                if 0 <= index < len(obj.items):
                    obj.items[index] = UNDEFINED
            return True
        self.eval_expr(target, scope)
        return False

    def _eval_update(self, node: ast.UpdateExpr, scope: Scope) -> object:
        old = to_number(self._read_target(node.operand, scope))
        new = old + 1.0 if node.op == "++" else old - 1.0
        self._write_target(node.operand, new, scope)
        return new if node.prefix else old

    def _eval_binary(self, op: str, left: object, right: object) -> object:
        if op == "+":
            if isinstance(left, str) or isinstance(right, str) or isinstance(
                left, (JSObject, JSArray)
            ) or isinstance(right, (JSObject, JSArray)):
                return to_string(left) + to_string(right)
            return to_number(left) + to_number(right)
        if op == "-":
            return to_number(left) - to_number(right)
        if op == "*":
            return to_number(left) * to_number(right)
        if op == "/":
            numerator = to_number(left)
            denominator = to_number(right)
            if math.isnan(numerator) or math.isnan(denominator):
                return math.nan
            if denominator == 0.0:
                if numerator == 0.0:
                    return math.nan
                sign = math.copysign(1.0, numerator) * math.copysign(1.0, denominator)
                return math.inf * sign
            return numerator / denominator
        if op == "%":
            denominator = to_number(right)
            numerator = to_number(left)
            if denominator == 0.0 or math.isnan(denominator) or math.isnan(numerator) or math.isinf(numerator):
                return math.nan
            return math.fmod(numerator, denominator)
        if op in ("<", "<=", ">", ">="):
            return self._relational(op, left, right)
        if op == "==":
            return loose_equals(left, right)
        if op == "!=":
            return not loose_equals(left, right)
        if op == "===":
            return strict_equals(left, right)
        if op == "!==":
            return not strict_equals(left, right)
        if op == "&":
            return float(_wrap_int32(to_int32(left) & to_int32(right)))
        if op == "|":
            return float(_wrap_int32(to_int32(left) | to_int32(right)))
        if op == "^":
            return float(_wrap_int32(to_int32(left) ^ to_int32(right)))
        if op == "<<":
            return float(_wrap_int32(to_int32(left) << (to_uint32(right) & 31)))
        if op == ">>":
            return float(to_int32(left) >> (to_uint32(right) & 31))
        if op == ">>>":
            return float(to_uint32(left) >> (to_uint32(right) & 31))
        if op == "in":
            return self._eval_in(left, right)
        if op == "instanceof":
            return isinstance(left, (JSObject, JSArray)) and isinstance(
                right, (JSFunction, NativeFunction)
            )
        raise AssertionError(f"unknown binary {op}")  # pragma: no cover

    @staticmethod
    def _relational(op: str, left: object, right: object) -> bool:
        if isinstance(left, str) and isinstance(right, str):
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        left_number = to_number(left)
        right_number = to_number(right)
        if math.isnan(left_number) or math.isnan(right_number):
            return False
        if op == "<":
            return left_number < right_number
        if op == "<=":
            return left_number <= right_number
        if op == ">":
            return left_number > right_number
        return left_number >= right_number

    @staticmethod
    def _eval_in(key: object, container: object) -> bool:
        if isinstance(container, JSObject):
            return to_string(key) in container.props
        if isinstance(container, JSArray):
            number = to_number(key)
            return not math.isnan(number) and 0 <= int(number) < len(container.items)
        return False

    # ------------------------------------------------------------------ #
    # Assignment plumbing
    # ------------------------------------------------------------------ #

    def _read_target(self, target: ast.Node, scope: Scope) -> object:
        if isinstance(target, ast.Identifier):
            return self._lookup(target.name, scope)
        if isinstance(target, ast.MemberExpr):
            return get_property(self.eval_expr(target.obj, scope), target.name)
        if isinstance(target, ast.IndexExpr):
            return self._eval_index(target, scope)
        return UNDEFINED

    def _write_target(self, target: ast.Node, value: object, scope: Scope) -> None:
        if isinstance(target, ast.Identifier):
            scope.set(target.name.text, value)
        elif isinstance(target, ast.MemberExpr):
            set_property(self.eval_expr(target.obj, scope), target.name, value)
        elif isinstance(target, ast.IndexExpr):
            obj = self.eval_expr(target.obj, scope)
            key = self.eval_expr(target.index, scope)
            if isinstance(obj, JSArray):
                number = to_number(key)
                if not math.isnan(number) and int(number) >= 0:
                    index = int(number)
                    while len(obj.items) <= index:
                        obj.items.append(UNDEFINED)
                    obj.items[index] = value
                    return
            set_property(obj, to_string(key), value)

    def _eval_assign(self, node: ast.AssignExpr, scope: Scope) -> object:
        if node.op == "=":
            value = self.eval_expr(node.value, scope)
            self._write_target(node.target, value, scope)
            return value
        if node.op in ("&&=", "||="):
            current = self._read_target(node.target, scope)
            if node.op == "&&=" and not truthy(current):
                return current
            if node.op == "||=" and truthy(current):
                return current
            value = self.eval_expr(node.value, scope)
            self._write_target(node.target, value, scope)
            return value
        operator = node.op[:-1]  # "+=" -> "+"
        current = self._read_target(node.target, scope)
        value = self._eval_binary(operator, current, self.eval_expr(node.value, scope))
        self._write_target(node.target, value, scope)
        return value

    def _eval_index(self, node: ast.IndexExpr, scope: Scope) -> object:
        obj = self.eval_expr(node.obj, scope)
        key = self.eval_expr(node.index, scope)
        if isinstance(obj, JSArray):
            number = to_number(key)
            if not math.isnan(number):
                index = int(number)
                if 0 <= index < len(obj.items):
                    return obj.items[index]
                return UNDEFINED
        if isinstance(obj, str):
            number = to_number(key)
            if not math.isnan(number) and 0 <= int(number) < len(obj):
                return obj[int(number)]
        return get_property(obj, to_string(key))

    # ------------------------------------------------------------------ #
    # Calls
    # ------------------------------------------------------------------ #

    def _eval_call(self, node: ast.CallExpr, scope: Scope) -> object:
        this: object = UNDEFINED
        if isinstance(node.callee, (ast.MemberExpr, ast.IndexExpr)):
            this = self.eval_expr(node.callee.obj, scope)
            if isinstance(node.callee, ast.MemberExpr):
                callee = get_property(this, node.callee.name)
            else:
                key = self.eval_expr(node.callee.index, scope)
                callee = get_property(this, to_string(key))
        else:
            callee = self.eval_expr(node.callee, scope)
        args = [self.eval_expr(arg, scope) for arg in node.args]
        return self.call_function(callee, this, args)

    def call_function(self, callee: object, this: object, args: List[object]) -> object:
        if isinstance(callee, NativeFunction):
            return callee.fn(self, this, args)
        if isinstance(callee, JSFunction):
            return self._call_js_function(callee, this, args)
        # Calling a non-function: sloppy no-op (semantic checking disabled).
        return UNDEFINED

    def _call_js_function(
        self, function: JSFunction, this: object, args: List[object]
    ) -> object:
        if self.call_depth >= self.max_call_depth:
            raise JSThrow("RangeError: call stack exceeded")
        self.call_depth += 1
        try:
            frame = Scope(function.closure)
            if not function.is_arrow:
                frame.declare("this", this)
            for position, param in enumerate(function.params):
                frame.declare(param, args[position] if position < len(args) else UNDEFINED)
            if function.name:
                frame.declare(function.name, function)
            if function.is_arrow and function.expr_body is not None:
                return self.eval_expr(function.expr_body, frame)
            try:
                for statement in function.body:
                    self.exec_stmt(statement, frame)
            except ReturnSignal as signal:
                return signal.value
            return UNDEFINED
        finally:
            self.call_depth -= 1

    def _eval_new(self, node: ast.NewExpr, scope: Scope) -> object:
        callee = self.eval_expr(node.callee, scope)
        args = [self.eval_expr(arg, scope) for arg in node.args]
        instance = JSObject()
        result = self.call_function(callee, instance, args)
        if isinstance(result, (JSObject, JSArray)):
            return result
        return instance


def _wrap_int32(value: int) -> int:
    """Wrap a Python int into signed 32-bit range."""
    value &= 0xFFFFFFFF
    if value >= 0x80000000:
        value -= 0x100000000
    return value
