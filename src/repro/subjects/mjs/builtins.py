"""Builtins of the mjs subset.

Covers the builtin names from the paper's Table 4 token inventory:
``print``, ``load``, ``JSON`` (with ``stringify``), ``Object``, ``isNaN``,
string methods ``indexOf``/``slice``/``substr`` and the ``length`` property.
Property dispatch on strings and arrays goes through
:func:`repro.taint.wrappers.strcmp`, as in mjs's C property lookup, so the
method names are discoverable by the fuzzer.
"""

from __future__ import annotations

import math
from typing import List, Union

from repro.taint.tstr import TaintedStr
from repro.taint.wrappers import strcmp
from repro.subjects.mjs.values import (
    UNDEFINED,
    JSArray,
    JSFunction,
    JSObject,
    NativeFunction,
    NativeNamespace,
    format_number,
    to_number,
    to_string,
)

PropName = Union[TaintedStr, str]


def _as_tstr(name: PropName) -> TaintedStr:
    return name if isinstance(name, TaintedStr) else TaintedStr(name)


# ---------------------------------------------------------------------- #
# Property access (mjs_get_own_property analogue)
# ---------------------------------------------------------------------- #


def get_property(obj: object, name: PropName) -> object:
    """``obj.name`` with mjs's strcmp-style builtin-method dispatch."""
    prop = _as_tstr(name)
    if isinstance(obj, JSObject):
        if prop.text in obj.props:
            return obj.props[prop.text]
        return UNDEFINED
    if isinstance(obj, NativeNamespace):
        return obj.lookup(prop)
    if isinstance(obj, str):
        return _string_property(obj, prop)
    if isinstance(obj, JSArray):
        return _array_property(obj, prop)
    return UNDEFINED


def set_property(obj: object, name: PropName, value: object) -> None:
    """``obj.name = value``; silently ignored on non-objects (sloppy)."""
    prop = _as_tstr(name)
    if isinstance(obj, JSObject):
        obj.props[prop.text] = value
    elif isinstance(obj, JSArray) and prop.text == "length":
        length = int(to_number(value)) if not math.isnan(to_number(value)) else 0
        del obj.items[max(0, length) :]


def _string_property(text: str, prop: TaintedStr) -> object:
    if strcmp(prop, "length") == 0:
        return float(len(text))
    if strcmp(prop, "indexOf") == 0:
        return NativeFunction("indexOf", _bind_string_index_of(text))
    if strcmp(prop, "slice") == 0:
        return NativeFunction("slice", _bind_string_slice(text))
    if strcmp(prop, "substr") == 0:
        return NativeFunction("substr", _bind_string_substr(text))
    return UNDEFINED


def _array_property(array: JSArray, prop: TaintedStr) -> object:
    if strcmp(prop, "length") == 0:
        return float(len(array.items))
    if strcmp(prop, "indexOf") == 0:
        return NativeFunction("indexOf", _bind_array_index_of(array))
    if strcmp(prop, "push") == 0:
        return NativeFunction("push", _bind_array_push(array))
    if strcmp(prop, "slice") == 0:
        return NativeFunction("slice", _bind_array_slice(array))
    return UNDEFINED


def _clamp_index(value: object, length: int, default: int) -> int:
    number = to_number(value)
    if math.isnan(number):
        return default
    index = int(number)
    if index < 0:
        index += length
    return max(0, min(length, index))


def _bind_string_index_of(text: str):
    def index_of(interp, this, args: List[object]) -> float:
        needle = to_string(args[0]) if args else "undefined"
        return float(text.find(needle))

    return index_of


def _bind_string_slice(text: str):
    def slice_(interp, this, args: List[object]) -> str:
        start = _clamp_index(args[0], len(text), 0) if args else 0
        end = _clamp_index(args[1], len(text), len(text)) if len(args) > 1 else len(text)
        return text[start:end]

    return slice_


def _bind_string_substr(text: str):
    def substr(interp, this, args: List[object]) -> str:
        start = _clamp_index(args[0], len(text), 0) if args else 0
        if len(args) > 1:
            count = to_number(args[1])
            length = 0 if math.isnan(count) else max(0, int(count))
            return text[start : start + length]
        return text[start:]

    return substr


def _bind_array_index_of(array: JSArray):
    def index_of(interp, this, args: List[object]) -> float:
        from repro.subjects.mjs.values import strict_equals

        needle = args[0] if args else UNDEFINED
        for position, item in enumerate(array.items):
            if strict_equals(item, needle):
                return float(position)
        return -1.0

    return index_of


def _bind_array_push(array: JSArray):
    def push(interp, this, args: List[object]) -> float:
        array.items.extend(args)
        return float(len(array.items))

    return push


def _bind_array_slice(array: JSArray):
    def slice_(interp, this, args: List[object]) -> JSArray:
        length = len(array.items)
        start = _clamp_index(args[0], length, 0) if args else 0
        end = _clamp_index(args[1], length, length) if len(args) > 1 else length
        return JSArray(array.items[start:end])

    return slice_


# ---------------------------------------------------------------------- #
# JSON.stringify
# ---------------------------------------------------------------------- #

_JSON_ESCAPES = {
    '"': '\\"',
    "\\": "\\\\",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\b": "\\b",
    "\f": "\\f",
}


def json_quote(text: str) -> str:
    """Quote a string for JSON output."""
    pieces = ['"']
    for char in text:
        if char in _JSON_ESCAPES:
            pieces.append(_JSON_ESCAPES[char])
        elif ord(char) < 0x20:
            pieces.append(f"\\u{ord(char):04x}")
        else:
            pieces.append(char)
    pieces.append('"')
    return "".join(pieces)


def json_stringify(value: object) -> str:
    """A small JSON.stringify: functions and undefined become null."""
    if value is UNDEFINED or isinstance(value, (JSFunction, NativeFunction, NativeNamespace)):
        return "null"
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if math.isnan(value) or math.isinf(value):
            return "null"
        return format_number(value)
    if isinstance(value, str):
        return json_quote(value)
    if isinstance(value, JSArray):
        return "[" + ",".join(json_stringify(item) for item in value.items) + "]"
    if isinstance(value, JSObject):
        members = ",".join(
            f"{json_quote(key)}:{json_stringify(item)}"
            for key, item in value.props.items()
        )
        return "{" + members + "}"
    return "null"


# ---------------------------------------------------------------------- #
# Global builtins
# ---------------------------------------------------------------------- #


def make_global_builtins(output: List[str]) -> NativeNamespace:
    """The builtin namespace consulted when a name is not in any scope.

    The lookup walks the member table with ``strcmp``, so reading an
    undeclared identifier records comparisons against every builtin name —
    this is how the fuzzer discovers ``print``, ``load`` and ``JSON``.
    """

    def native_print(interp, this, args: List[object]) -> object:
        output.append(" ".join(to_string(arg) for arg in args))
        return UNDEFINED

    def native_load(interp, this, args: List[object]) -> object:
        # mjs's load() executes a file; file access is out of scope for the
        # fuzzing harness, so loading is a recorded no-op.
        return UNDEFINED

    def native_is_nan(interp, this, args: List[object]) -> bool:
        return math.isnan(to_number(args[0] if args else UNDEFINED))

    def native_object(interp, this, args: List[object]) -> object:
        if args and isinstance(args[0], (JSObject, JSArray)):
            return args[0]
        return JSObject()

    def json_stringify_native(interp, this, args: List[object]) -> str:
        return json_stringify(args[0] if args else UNDEFINED)

    json_namespace = NativeNamespace(
        "JSON", {"stringify": NativeFunction("stringify", json_stringify_native)}
    )
    return NativeNamespace(
        "globals",
        {
            "print": NativeFunction("print", native_print),
            "load": NativeFunction("load", native_load),
            "isNaN": NativeFunction("isNaN", native_is_nan),
            "JSON": json_namespace,
            "Object": NativeFunction("Object", native_object),
        },
    )
