"""AST node definitions for the mjs subset.

Plain dataclasses; evaluation lives in :mod:`repro.subjects.mjs.interp` so
the tree stays a passive description of the program.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.taint.tstr import TaintedStr


class Node:
    """Base class for all AST nodes."""


# ---------------------------------------------------------------------- #
# Expressions
# ---------------------------------------------------------------------- #


@dataclass
class NumberLit(Node):
    value: float


@dataclass
class StringLit(Node):
    value: str


@dataclass
class BoolLit(Node):
    value: bool


@dataclass
class NullLit(Node):
    pass


@dataclass
class UndefinedLit(Node):
    pass


@dataclass
class NanLit(Node):
    pass


@dataclass
class ThisExpr(Node):
    pass


@dataclass
class Identifier(Node):
    """A name reference; ``name`` keeps its taints for builtin dispatch."""

    name: TaintedStr


@dataclass
class ArrayLit(Node):
    items: List[Node]


@dataclass
class ObjectLit(Node):
    #: (key, value) pairs; keys are plain strings (identifier / string /
    #: number spellings).
    members: List[Tuple[str, Node]]


@dataclass
class FunctionExpr(Node):
    name: Optional[str]
    params: List[str]
    body: List[Node]


@dataclass
class ArrowExpr(Node):
    param: str
    #: Either a single expression body or a statement list.
    expr_body: Optional[Node]
    block_body: Optional[List[Node]] = None


@dataclass
class UnaryExpr(Node):
    op: str
    operand: Node


@dataclass
class UpdateExpr(Node):
    """``++``/``--`` in prefix or postfix position."""

    op: str
    operand: Node
    prefix: bool


@dataclass
class BinaryExpr(Node):
    op: str
    left: Node
    right: Node


@dataclass
class LogicalExpr(Node):
    op: str  # "&&" or "||"
    left: Node
    right: Node


@dataclass
class ConditionalExpr(Node):
    test: Node
    consequent: Node
    alternate: Node


@dataclass
class AssignExpr(Node):
    op: str  # "=", "+=", ..., "&&=", "||="
    target: Node
    value: Node


@dataclass
class SequenceExpr(Node):
    items: List[Node]


@dataclass
class MemberExpr(Node):
    """``obj.name`` — the property name keeps its taints."""

    obj: Node
    name: TaintedStr


@dataclass
class IndexExpr(Node):
    obj: Node
    index: Node


@dataclass
class CallExpr(Node):
    callee: Node
    args: List[Node]


@dataclass
class NewExpr(Node):
    callee: Node
    args: List[Node]


# ---------------------------------------------------------------------- #
# Statements
# ---------------------------------------------------------------------- #


@dataclass
class ExpressionStmt(Node):
    expr: Node


@dataclass
class VarDecl(Node):
    kind: str  # "var" | "let" | "const"
    #: (name, initialiser or None) pairs.
    declarations: List[Tuple[str, Optional[Node]]]


@dataclass
class BlockStmt(Node):
    body: List[Node]


@dataclass
class EmptyStmt(Node):
    pass


@dataclass
class IfStmt(Node):
    test: Node
    consequent: Node
    alternate: Optional[Node]


@dataclass
class WhileStmt(Node):
    test: Node
    body: Node


@dataclass
class DoWhileStmt(Node):
    body: Node
    test: Node


@dataclass
class ForStmt(Node):
    init: Optional[Node]
    test: Optional[Node]
    update: Optional[Node]
    body: Node


@dataclass
class ForInStmt(Node):
    decl_kind: Optional[str]  # None for a bare identifier target
    target: str
    kind: str  # "in" or "of"
    iterable: Node
    body: Node


@dataclass
class BreakStmt(Node):
    pass


@dataclass
class ContinueStmt(Node):
    pass


@dataclass
class ReturnStmt(Node):
    value: Optional[Node]


@dataclass
class ThrowStmt(Node):
    value: Node


@dataclass
class TryStmt(Node):
    block: List[Node]
    catch_param: Optional[str]
    catch_body: Optional[List[Node]]
    finally_body: Optional[List[Node]]


@dataclass
class SwitchCase(Node):
    test: Optional[Node]  # None for "default"
    body: List[Node]


@dataclass
class SwitchStmt(Node):
    discriminant: Node
    cases: List[SwitchCase]


@dataclass
class WithStmt(Node):
    obj: Node
    body: Node


@dataclass
class DebuggerStmt(Node):
    pass


@dataclass
class FunctionDecl(Node):
    name: str
    params: List[str]
    body: List[Node]


@dataclass
class Program(Node):
    body: List[Node]
