"""Token kinds and the reserved-word table of the mjs subset.

The reserved words are matched with a ``strcmp`` loop over :data:`KEYWORDS`
(see :mod:`repro.subjects.mjs.lexer`), which is the pattern that lets
pFuzzer synthesise whole keywords from one recorded string comparison.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.taint.tstr import TaintedStr


class TokKind(enum.Enum):
    """Lexical token categories."""

    PUNCT = "punct"
    NUMBER = "number"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    EOF = "eof"


#: Reserved words of the mjs subset.  Every entry is also a Table 4 token.
KEYWORDS: Tuple[str, ...] = (
    "break",
    "case",
    "catch",
    "const",
    "continue",
    "debugger",
    "default",
    "delete",
    "do",
    "else",
    "false",
    "finally",
    "for",
    "function",
    "if",
    "in",
    "instanceof",
    "let",
    "NaN",
    "new",
    "null",
    "of",
    "return",
    "switch",
    "this",
    "throw",
    "true",
    "try",
    "typeof",
    "undefined",
    "var",
    "void",
    "while",
    "with",
)

#: Multi-character punctuators, longest first per leading character; the
#: lexer matches them with explicit per-character comparisons so every
#: alternative is visible to the fuzzer.
MULTI_PUNCT: Tuple[str, ...] = (
    ">>>=",
    "===",
    "!==",
    "<<=",
    ">>=",
    ">>>",
    "&&=",
    "||=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "=>",
)

#: Single-character punctuators.
SINGLE_PUNCT = "(){}[];,.+-*/%<>=&|^!~?:"


@dataclass
class Token:
    """One lexical token.

    Attributes:
        kind: token category.
        text: the token spelling (keyword text, punctuator, raw literal).
        index: input index of the token's first character.
        number: numeric value for NUMBER tokens.
        string: decoded value for STRING tokens.
        name: identifier spelling *with taints* for IDENT tokens, so that
            runtime property/builtin dispatch can record string comparisons.
        nl_before: a line terminator occurred between the previous token and
            this one (drives automatic semicolon insertion).
    """

    kind: TokKind
    text: str
    index: int
    number: float = 0.0
    string: str = ""
    name: Optional[TaintedStr] = None
    nl_before: bool = False

    def is_punct(self, text: str) -> bool:
        return self.kind is TokKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokKind.KEYWORD and self.text == text

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}@{self.index})"
