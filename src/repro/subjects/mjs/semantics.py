"""Post-parse semantic checking (the paper's §7.3 limitation, made testable).

The paper disables semantic checking in mjs because pFuzzer "has no notion
of a delayed constraint": an input that satisfies the parser may still
reference undeclared names, and those context-sensitive checks run *after*
parsing.  This module implements the canonical such check — every referenced
name must be declared — so the limitation can be demonstrated and measured:
enable it via ``MjsSubject(semantic_checks=True)`` and watch the fuzzer's
parser-valid inputs get rejected.
"""

from __future__ import annotations

from typing import List, Set

from repro.runtime.errors import SemanticError
from repro.subjects.mjs import ast

#: Names the runtime provides; using them is never a semantic error.
BUILTIN_NAMES = frozenset(
    {"print", "load", "isNaN", "JSON", "Object", "this", "arguments"}
)


class _ScopeFrame:
    def __init__(self, parent: "_ScopeFrame" = None) -> None:
        self.names: Set[str] = set()
        self.parent = parent

    def declare(self, name: str) -> None:
        self.names.add(name)

    def knows(self, name: str) -> bool:
        frame = self
        while frame is not None:
            if name in frame.names:
                return True
            frame = frame.parent
        return name in BUILTIN_NAMES


class SemanticChecker:
    """Declare-before-use checking over a parsed program."""

    def check(self, program: ast.Program) -> None:
        """Raises :class:`SemanticError` on the first undeclared use."""
        root = _ScopeFrame()
        self._hoist(program.body, root)
        for statement in program.body:
            self._stmt(statement, root)

    # ------------------------------------------------------------------ #
    # Declarations (hoisted per scope, like var/function in JS)
    # ------------------------------------------------------------------ #

    def _hoist(self, body: List[ast.Node], scope: _ScopeFrame) -> None:
        for node in body:
            if isinstance(node, ast.VarDecl):
                for name, _ in node.declarations:
                    scope.declare(name)
            elif isinstance(node, ast.FunctionDecl):
                scope.declare(node.name)
            elif isinstance(node, ast.BlockStmt):
                self._hoist(node.body, scope)
            elif isinstance(node, ast.IfStmt):
                self._hoist([node.consequent], scope)
                if node.alternate is not None:
                    self._hoist([node.alternate], scope)
            elif isinstance(node, (ast.WhileStmt, ast.DoWhileStmt, ast.ForStmt, ast.WithStmt)):
                self._hoist([node.body], scope)
            elif isinstance(node, ast.ForInStmt):
                if node.decl_kind is not None:
                    scope.declare(node.target)
                self._hoist([node.body], scope)
            elif isinstance(node, ast.TryStmt):
                self._hoist(node.block, scope)
                if node.catch_body is not None:
                    self._hoist(node.catch_body, scope)
                if node.finally_body is not None:
                    self._hoist(node.finally_body, scope)
            elif isinstance(node, ast.SwitchStmt):
                for case in node.cases:
                    self._hoist(case.body, scope)

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def _stmt(self, node: ast.Node, scope: _ScopeFrame) -> None:
        if isinstance(node, ast.ExpressionStmt):
            self._expr(node.expr, scope)
        elif isinstance(node, ast.VarDecl):
            for name, init in node.declarations:
                if init is not None:
                    self._expr(init, scope)
                scope.declare(name)
        elif isinstance(node, ast.BlockStmt):
            for child in node.body:
                self._stmt(child, scope)
        elif isinstance(node, ast.IfStmt):
            self._expr(node.test, scope)
            self._stmt(node.consequent, scope)
            if node.alternate is not None:
                self._stmt(node.alternate, scope)
        elif isinstance(node, ast.WhileStmt):
            self._expr(node.test, scope)
            self._stmt(node.body, scope)
        elif isinstance(node, ast.DoWhileStmt):
            self._stmt(node.body, scope)
            self._expr(node.test, scope)
        elif isinstance(node, ast.ForStmt):
            if node.init is not None:
                self._stmt(node.init, scope)
            if node.test is not None:
                self._expr(node.test, scope)
            if node.update is not None:
                self._expr(node.update, scope)
            self._stmt(node.body, scope)
        elif isinstance(node, ast.ForInStmt):
            self._expr(node.iterable, scope)
            # A bare target (`for (k in o)`) assigns, and plain assignment
            # declares in sloppy mode — same rule as AssignExpr below.
            scope.declare(node.target)
            self._stmt(node.body, scope)
        elif isinstance(node, ast.ReturnStmt):
            if node.value is not None:
                self._expr(node.value, scope)
        elif isinstance(node, ast.ThrowStmt):
            self._expr(node.value, scope)
        elif isinstance(node, ast.TryStmt):
            for child in node.block:
                self._stmt(child, scope)
            if node.catch_body is not None:
                catch_scope = _ScopeFrame(scope)
                if node.catch_param is not None:
                    catch_scope.declare(node.catch_param)
                for child in node.catch_body:
                    self._stmt(child, catch_scope)
            if node.finally_body is not None:
                for child in node.finally_body:
                    self._stmt(child, scope)
        elif isinstance(node, ast.SwitchStmt):
            self._expr(node.discriminant, scope)
            for case in node.cases:
                if case.test is not None:
                    self._expr(case.test, scope)
                for child in case.body:
                    self._stmt(child, scope)
        elif isinstance(node, ast.WithStmt):
            self._expr(node.obj, scope)
            # Inside `with`, any name may resolve to an object property;
            # real engines cannot statically check this either.
            permissive = _ScopeFrame(scope)
            permissive.names = _Anything()
            self._stmt(node.body, permissive)
        elif isinstance(node, ast.FunctionDecl):
            scope.declare(node.name)
            self._function(node.params, node.body, scope)
        elif isinstance(node, (ast.EmptyStmt, ast.BreakStmt, ast.ContinueStmt, ast.DebuggerStmt)):
            pass

    def _function(self, params: List[str], body: List[ast.Node], scope: _ScopeFrame) -> None:
        frame = _ScopeFrame(scope)
        for param in params:
            frame.declare(param)
        self._hoist(body, frame)
        for statement in body:
            self._stmt(statement, frame)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def _expr(self, node: ast.Node, scope: _ScopeFrame) -> None:
        if isinstance(node, ast.Identifier):
            if not scope.knows(node.name.text):
                raise SemanticError(f"undeclared name {node.name.text!r}")
        elif isinstance(node, ast.ArrayLit):
            for item in node.items:
                self._expr(item, scope)
        elif isinstance(node, ast.ObjectLit):
            for _, value in node.members:
                self._expr(value, scope)
        elif isinstance(node, ast.FunctionExpr):
            inner = _ScopeFrame(scope)
            if node.name:
                inner.declare(node.name)
            frame = _ScopeFrame(inner)
            for param in node.params:
                frame.declare(param)
            self._hoist(node.body, frame)
            for statement in node.body:
                self._stmt(statement, frame)
        elif isinstance(node, ast.ArrowExpr):
            frame = _ScopeFrame(scope)
            frame.declare(node.param)
            if node.expr_body is not None:
                self._expr(node.expr_body, frame)
            if node.block_body:
                self._hoist(node.block_body, frame)
                for statement in node.block_body:
                    self._stmt(statement, frame)
        elif isinstance(node, ast.UnaryExpr):
            if node.op == "typeof" and isinstance(node.operand, ast.Identifier):
                return  # typeof is safe on undeclared names, as in JS
            self._expr(node.operand, scope)
        elif isinstance(node, ast.UpdateExpr):
            self._expr(node.operand, scope)
        elif isinstance(node, (ast.BinaryExpr, ast.LogicalExpr)):
            self._expr(node.left, scope)
            self._expr(node.right, scope)
        elif isinstance(node, ast.ConditionalExpr):
            self._expr(node.test, scope)
            self._expr(node.consequent, scope)
            self._expr(node.alternate, scope)
        elif isinstance(node, ast.AssignExpr):
            self._expr(node.value, scope)
            if isinstance(node.target, ast.Identifier):
                if node.op == "=":
                    # Sloppy-mode global creation is a *runtime* behaviour;
                    # the static check treats plain assignment as a
                    # declaration, like mjs's own checks do.
                    scope.declare(node.target.name.text)
                elif not scope.knows(node.target.name.text):
                    raise SemanticError(
                        f"undeclared name {node.target.name.text!r}"
                    )
            else:
                self._expr(node.target, scope)
        elif isinstance(node, ast.SequenceExpr):
            for item in node.items:
                self._expr(item, scope)
        elif isinstance(node, ast.MemberExpr):
            self._expr(node.obj, scope)
        elif isinstance(node, ast.IndexExpr):
            self._expr(node.obj, scope)
            self._expr(node.index, scope)
        elif isinstance(node, (ast.CallExpr, ast.NewExpr)):
            self._expr(node.callee, scope)
            for arg in node.args:
                self._expr(arg, scope)


class _Anything(set):
    """A name set that contains everything (used under ``with``)."""

    def __contains__(self, name: object) -> bool:  # pragma: no cover - trivial
        return True
