"""Adapter turning any parsing callable into a :class:`Subject`.

The plugin API's workhorse: wrap a ``Callable[[InputStream], object]`` and
it fuzzes like a built-in subject — the module defining the callable is
what gets traced/instrumented for coverage, and each wrapped parser gets
its own arc table (one adapter class, many distinct parsers) through the
``arc_table_key`` hook in :func:`repro.runtime.arcs.arc_table_for`.
"""

from __future__ import annotations

import sys
import types
from typing import Callable, Optional, Sequence, Tuple

from repro.runtime.stream import InputStream
from repro.subjects.base import Subject


class FunctionSubject(Subject):
    """A subject defined by a single parsing function.

    Args:
        func: the parser; reads from the stream, raises
            :class:`~repro.runtime.errors.ParseError` on rejection,
            returns a result object on acceptance.  Anything else it
            raises is recorded as a CRASH by the harness.
        name: registry name; defaults to the function's ``__name__``.
        modules: modules whose code counts as the subject for coverage;
            defaults to the module that defines ``func``.
        description: one-line description for reports.
    """

    def __init__(
        self,
        func: Callable[[InputStream], object],
        name: Optional[str] = None,
        modules: Optional[Sequence[types.ModuleType]] = None,
        description: str = "",
    ) -> None:
        self._func = func
        self.name = name or getattr(func, "__name__", "function")
        if description:
            self.description = description
        elif func.__doc__:
            self.description = func.__doc__.strip().splitlines()[0]
        else:
            self.description = ""
        if modules is not None:
            self._modules: Tuple[types.ModuleType, ...] = tuple(modules)
        else:
            module = sys.modules.get(getattr(func, "__module__", None))
            self._modules = (module,) if module is not None else ()
        # One adapter class wraps many distinct parsers; key each parser's
        # arc table by name so their branch/signature spaces stay separate.
        self.arc_table_key = ("function-subject", self.name)

    def parse(self, stream: InputStream) -> object:
        return self._func(stream)

    def modules(self) -> Tuple[types.ModuleType, ...]:
        return self._modules

    def rebind_instrumented(self, resolve) -> "FunctionSubject":
        """Clone for the AST backend, parser rebound into the clone module.

        The instrumenter clones and re-executes the parser's module; the
        adapter must then call the *clone's* function, not the original
        (the class-clone path would keep ``self._func`` pointing at
        uninstrumented code).  ``resolve`` maps a module name to its
        instrumented clone.
        """
        clone_module = resolve(self._func.__module__)
        clone_func = getattr(clone_module, self._func.__name__)
        clone = FunctionSubject(
            clone_func,
            name=self.name,
            modules=(clone_module,),
            description=self.description,
        )
        return clone

    def __repr__(self) -> str:
        return f"<FunctionSubject {self.name}>"
