"""The §2 walkthrough subject: an arithmetic-expression parser.

This is the "mystery program P" of the paper's Section 2.  It accepts
arithmetic expressions over integers with unary and binary ``+``/``-`` and
parentheses — the language whose valid inputs include::

    1   11   +1   -1   1+1   1-1   (1)   (2-94)

The parser is written exactly the way the paper assumes parsers are written:
character by character, with a single character of lookahead, comparing the
next character against every acceptable alternative before rejecting.
"""

from __future__ import annotations

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.base import Subject


class ExprSubject(Subject):
    """Recursive-descent parser for parenthesised integer arithmetic."""

    name = "expr"
    description = "Section 2 walkthrough: arithmetic expressions"

    #: Recursion guard for pathological ``((((...`` nesting.
    max_depth = 200

    def __init__(self) -> None:
        self._depth = 0

    def parse(self, stream: InputStream) -> int:
        self._depth = 0
        value = self._expression(stream)
        lookahead = stream.peek()
        if not lookahead.is_eof:
            raise ParseError(
                f"trailing input at {lookahead.index}", lookahead.index
            )
        return value

    # ------------------------------------------------------------------ #
    # Grammar:  expression := factor (('+' | '-') factor)*
    #           factor     := ('+' | '-')? atom
    #           atom       := number | '(' expression ')'
    # ------------------------------------------------------------------ #

    def _expression(self, stream: InputStream) -> int:
        value = self._factor(stream)
        while True:
            operator = stream.peek()
            if operator == "+":
                stream.next_char()
                value = value + self._factor(stream)
            elif operator == "-":
                stream.next_char()
                value = value - self._factor(stream)
            else:
                return value

    def _factor(self, stream: InputStream) -> int:
        sign = 1
        lookahead = stream.peek()
        if lookahead == "+":
            stream.next_char()
        elif lookahead == "-":
            stream.next_char()
            sign = -1
        return sign * self._atom(stream)

    def _atom(self, stream: InputStream) -> int:
        lookahead = stream.peek()
        if lookahead == "(":
            self._depth += 1
            if self._depth > self.max_depth:
                raise ParseError(f"nesting too deep at {lookahead.index}", lookahead.index)
            stream.next_char()
            value = self._expression(stream)
            self._depth -= 1
            closing = stream.peek()
            if closing != ")":
                raise ParseError(f"expected ')' at {closing.index}", closing.index)
            stream.next_char()
            return value
        if lookahead.isdigit():
            return self._number(stream)
        raise ParseError(
            f"expected digit, '(', '+' or '-' at {lookahead.index}",
            lookahead.index,
        )

    def _number(self, stream: InputStream) -> int:
        value = 0
        digits = 0
        while True:
            lookahead = stream.peek()
            if not lookahead.isdigit():
                break
            stream.next_char()
            value = value * 10 + lookahead.digit_value()
            digits += 1
        if digits == 0:
            raise ParseError(f"expected digit at {stream.peek().index}")
        return value
