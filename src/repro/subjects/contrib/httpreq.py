"""HTTP/1.x request-line parser, onboarded through the plugin API.

``METHOD SP request-target SP HTTP/DIGIT.DIGIT CRLF`` in the style of a
C server's hand-rolled request-line scanner: the method is matched with
recorded string comparisons (the ``strncmp(buf, "GET", 3)`` idiom), the
version with character comparisons.  Registered as subject ``httpreq``.
"""

from __future__ import annotations

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.taint.tstr import TaintedStr

#: RFC 9110 common methods, checked in the order a C dispatcher would.
_METHODS = ("GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "TRACE", "PATCH")

#: Visible ASCII minus space (request-target characters, no validation of
#: the target's inner structure — servers routinely defer that).
_TARGET_CHARS = "".join(chr(code) for code in range(0x21, 0x7F))


def _is_method_char(char) -> bool:
    return char.isalpha()


def _is_target_char(char) -> bool:
    return char.in_set(_TARGET_CHARS)


def parse_request_line(stream: InputStream) -> dict:
    """Parse one request line; returns method/target/version."""
    token = stream.read_while(_is_method_char)
    method = _match_method(token)
    _expect(stream, " ")
    target = stream.read_while(_is_target_char)
    if not target.text:
        bad = stream.peek()
        raise ParseError(f"empty request target at {bad.index}", bad.index)
    _expect(stream, " ")
    for expected in "HTTP/":
        _expect(stream, expected)
    major = _expect_digit(stream)
    _expect(stream, ".")
    minor = _expect_digit(stream)
    _expect(stream, "\r")
    _expect(stream, "\n")
    if not stream.peek().is_eof:
        bad = stream.peek()
        raise ParseError(f"trailing bytes at {bad.index}", bad.index)
    return {
        "method": method,
        "target": target.text,
        "version": (major, minor),
    }


def _match_method(token: TaintedStr) -> str:
    for method in _METHODS:
        if token == method:
            return method
    raise ParseError(f"unknown method {token.text!r}", token.first_index() or 0)


def _expect(stream: InputStream, expected: str) -> None:
    char = stream.peek()
    if char.is_eof or char != expected:
        raise ParseError(f"expected {expected!r} at {char.index}", char.index)
    stream.next_char()


def _expect_digit(stream: InputStream) -> int:
    char = stream.peek()
    if char.is_eof or not char.isdigit():
        raise ParseError(f"expected a digit at {char.index}", char.index)
    stream.next_char()
    return int(char.value)


def _make_subject():
    from repro.subjects.function import FunctionSubject

    return FunctionSubject(
        parse_request_line, name="httpreq", description="HTTP/1.x request-line parser"
    )


def register() -> None:
    """Register the ``httpreq`` subject (idempotent)."""
    from repro.subjects.registry import register_subject

    register_subject("httpreq", _make_subject, replace=True)


# The AST coverage backend re-executes an instrumented clone of this
# module; the clone must not re-register itself (its factory would hand
# out clone-bound subjects to everyone).  Clone namespaces carry the
# coverage hooks, so their absence identifies the real import.
if "__cov_line__" not in globals():
    register()
