"""ISO-8601 date/time parser, onboarded through the plugin API.

``YYYY-MM-DD`` with an optional ``THH:MM:SS`` time part and optional
trailing ``Z``, validated field by field the way a hand-rolled C
``sscanf``-replacement would: every digit is a recorded character
comparison and every range check rejects with a :class:`ParseError`.
Registered as subject ``isodate``.
"""

from __future__ import annotations

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream

_DAYS_IN_MONTH = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)


def parse_isodate(stream: InputStream) -> dict:
    """Parse one ISO-8601 date[time]; returns its numeric fields."""
    year = _read_number(stream, 4, "year")
    _expect(stream, "-")
    month = _read_number(stream, 2, "month")
    if month < 1 or month > 12:
        raise ParseError(f"month {month:02d} out of range", stream.pos)
    _expect(stream, "-")
    day = _read_number(stream, 2, "day")
    limit = _DAYS_IN_MONTH[month - 1]
    if month == 2 and _is_leap(year):
        limit = 29
    if day < 1 or day > limit:
        raise ParseError(f"day {day:02d} out of range", stream.pos)
    result = {"year": year, "month": month, "day": day}
    char = stream.peek()
    if not char.is_eof and char == "T":
        stream.next_char()
        hour = _read_number(stream, 2, "hour")
        if hour > 23:
            raise ParseError(f"hour {hour:02d} out of range", stream.pos)
        _expect(stream, ":")
        minute = _read_number(stream, 2, "minute")
        if minute > 59:
            raise ParseError(f"minute {minute:02d} out of range", stream.pos)
        _expect(stream, ":")
        second = _read_number(stream, 2, "second")
        if second > 60:  # leap second
            raise ParseError(f"second {second:02d} out of range", stream.pos)
        result.update(hour=hour, minute=minute, second=second)
        char = stream.peek()
    if not char.is_eof and char == "Z":
        stream.next_char()
        result["utc"] = True
    if not stream.peek().is_eof:
        bad = stream.peek()
        raise ParseError(f"trailing bytes at {bad.index}", bad.index)
    return result


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _read_number(stream: InputStream, width: int, what: str) -> int:
    value = 0
    for _ in range(width):
        char = stream.peek()
        if char.is_eof or not char.isdigit():
            raise ParseError(
                f"expected a {what} digit at {char.index}", char.index
            )
        stream.next_char()
        value = value * 10 + int(char.value)
    return value


def _expect(stream: InputStream, expected: str) -> None:
    char = stream.peek()
    if char.is_eof or char != expected:
        raise ParseError(f"expected {expected!r} at {char.index}", char.index)
    stream.next_char()


def _make_subject():
    from repro.subjects.function import FunctionSubject

    return FunctionSubject(
        parse_isodate, name="isodate", description="ISO-8601 date/time parser"
    )


def register() -> None:
    """Register the ``isodate`` subject (idempotent)."""
    from repro.subjects.registry import register_subject

    register_subject("isodate", _make_subject, replace=True)


# The AST coverage backend re-executes an instrumented clone of this
# module; the clone must not re-register itself (its factory would hand
# out clone-bound subjects to everyone).  Clone namespaces carry the
# coverage hooks, so their absence identifies the real import.
if "__cov_line__" not in globals():
    register()
