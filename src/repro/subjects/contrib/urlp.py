"""RFC-3986-flavoured URL parser, onboarded through the plugin API.

A character-by-character ``scheme://host[:port][/path][?query][#fragment]``
parser in the style of a hand-rolled C URL splitter: every check is a
recorded character comparison, so the fuzzer can synthesise URLs from
scratch.  Registered as subject ``url``.
"""

from __future__ import annotations

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.taint.tstr import TaintedStr

_SCHEME_EXTRA = "+-."
_HOST_CHARS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-"
#: pchar-ish set for path/query/fragment (no percent-decoding).
_PATH_CHARS = (
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "-._~!$&'()*+,;=:@/%"
)


# read_while predicates as named module-level functions: the AST coverage
# backend cannot instrument lambdas.
def _is_scheme_char(char) -> bool:
    return char.isalpha() or char.isdigit() or char.in_set(_SCHEME_EXTRA)


def _is_host_char(char) -> bool:
    return char.in_set(_HOST_CHARS)


def _is_digit(char) -> bool:
    return char.isdigit()


def _is_path_char(char) -> bool:
    return char.in_set(_PATH_CHARS)


def _is_query_char(char) -> bool:
    return char.in_set(_PATH_CHARS + "?")


def parse_url(stream: InputStream) -> dict:
    """Parse one URL; returns its components as a dict."""
    scheme = _parse_scheme(stream)
    _expect(stream, ":")
    _expect(stream, "/")
    _expect(stream, "/")
    host = _parse_host(stream)
    port = None
    if not stream.peek().is_eof and stream.peek() == ":":
        stream.next_char()
        port = _parse_port(stream)
    path = TaintedStr.empty()
    if not stream.peek().is_eof and stream.peek() == "/":
        path = stream.read_while(_is_path_char)
    query = None
    fragment = None
    char = stream.peek()
    if not char.is_eof and char == "?":
        stream.next_char()
        # "?" may recur inside the query (RFC 3986 query = *( pchar / "/" / "?" )).
        query = stream.read_while(_is_query_char).text
        char = stream.peek()
    if not char.is_eof and char == "#":
        stream.next_char()
        fragment = stream.read_while(_is_query_char).text
    if not stream.peek().is_eof:
        bad = stream.peek()
        raise ParseError(f"unexpected character at {bad.index}", bad.index)
    return {
        "scheme": scheme.text,
        "host": host.text,
        "port": port,
        "path": path.text,
        "query": query,
        "fragment": fragment,
    }


def _expect(stream: InputStream, expected: str) -> None:
    char = stream.peek()
    if char.is_eof or char != expected:
        raise ParseError(
            f"expected {expected!r} at {char.index}", char.index
        )
    stream.next_char()


def _parse_scheme(stream: InputStream) -> TaintedStr:
    first = stream.peek()
    if first.is_eof or not first.isalpha():
        raise ParseError("scheme must start with a letter", first.index)
    return stream.read_while(_is_scheme_char)


def _parse_host(stream: InputStream) -> TaintedStr:
    host = stream.read_while(_is_host_char)
    if not host.text:
        bad = stream.peek()
        raise ParseError(f"empty host at {bad.index}", bad.index)
    return host


def _parse_port(stream: InputStream) -> int:
    digits = stream.read_while(_is_digit)
    if not digits.text:
        bad = stream.peek()
        raise ParseError(f"empty port at {bad.index}", bad.index)
    if len(digits.text) > 5 or int(digits.text) > 65535:
        raise ParseError(f"port {digits.text} out of range", stream.pos)
    return int(digits.text)


def _make_subject():
    from repro.subjects.function import FunctionSubject

    return FunctionSubject(
        parse_url, name="url", description="RFC-3986-flavoured URL parser"
    )


def register() -> None:
    """Register the ``url`` subject (idempotent)."""
    from repro.subjects.registry import register_subject

    register_subject("url", _make_subject, replace=True)


# The AST coverage backend re-executes an instrumented clone of this
# module; the clone must not re-register itself (its factory would hand
# out clone-bound subjects to everyone).  Clone namespaces carry the
# coverage hooks, so their absence identifies the real import.
if "__cov_line__" not in globals():
    register()
