"""Bundled plugin-style subjects — real-world parsers beyond Table 1.

Each module here onboards one parser through the public plugin API
(:func:`repro.subjects.registry.register_subject` around a
:class:`~repro.subjects.function.FunctionSubject`), exactly the way an
external ``--subject-module`` would.  They are *not* part of the paper's
evaluation grid; they exist to exercise the pluggable subject API and the
crash-hunting mode on inputs with realistic structure:

* :mod:`~repro.subjects.contrib.urlp` — RFC-3986-flavoured URL parser;
* :mod:`~repro.subjects.contrib.httpreq` — HTTP/1.x request-line parser;
* :mod:`~repro.subjects.contrib.isodate` — ISO-8601 date/time parser.

The registry imports these lazily by name (``load_subject("url")``), or
they can be loaded explicitly with ``--subject-module
repro.subjects.contrib.urlp``.
"""
