"""Subject interface.

A subject is a program with an input parser: it reads characters
sequentially from an :class:`~repro.runtime.stream.InputStream`, raises
:class:`~repro.runtime.errors.ParseError` on the first error (the paper's
"abort parsing with a non-zero exit code"), and returns normally when the
input is accepted.  Subjects that *execute* their input (tinyC, mjs) do so
inside :meth:`Subject.parse`, under a step budget that turns infinite loops
into :class:`~repro.runtime.errors.HangError`.
"""

from __future__ import annotations

import abc
import inspect
import sys
import types
from typing import FrozenSet, Tuple

from repro.runtime.stream import InputStream


class Subject(abc.ABC):
    """One program under test.

    Class attributes:
        name: registry key ("ini", "csv", "json", "tinyc", "mjs", "expr").
        description: one-line description for reports.
    """

    name: str = "abstract"
    description: str = ""

    @abc.abstractmethod
    def parse(self, stream: InputStream) -> object:
        """Parse (and, where applicable, execute) one input.

        Raises:
            ParseError: the input was rejected.
            HangError: execution exceeded the step budget.

        Returns:
            A subject-specific result object for accepted inputs.
        """

    def modules(self) -> Tuple[types.ModuleType, ...]:
        """Modules whose code counts as "the subject" for coverage."""
        return (sys.modules[type(self).__module__],)

    def instrument_modules(self) -> Tuple[types.ModuleType, ...]:
        """Modules the AST coverage backend rewrites for this subject.

        Defaults to :meth:`modules` — the same files the settrace backend
        traces — which keeps the two backends equivalent.  Subjects may
        override to exclude modules that the instrumenter cannot handle, at
        the cost of losing that equivalence.
        """
        return self.modules()

    @property
    def files(self) -> FrozenSet[str]:
        """Source files traced for branch coverage."""
        return frozenset(
            inspect.getsourcefile(module) or module.__file__
            for module in self.modules()
        )

    def accepts(self, text: str) -> bool:
        """Convenience oracle: does the subject accept ``text``?

        Runs without instrumentation; used by tests and the evaluation
        harness to validate stored inputs, like the paper re-runs AFL's and
        KLEE's outputs to check exit codes.
        """
        from repro.runtime.errors import SubjectError

        try:
            self.parse(InputStream(text))
        except SubjectError:
            return False
        return True

    def __repr__(self) -> str:
        return f"<Subject {self.name}>"
