"""csvparser-style CSV parser (subject "csv", Table 1: 297 LoC upstream).

Mirrors JamesRamm/csv_parser: comma-separated fields, newline-separated
records, double-quoted fields that may contain commas, newlines and doubled
quotes.  Rejections happen on the two classic CSV errors: an unterminated
quoted field, and a bare ``"`` inside an unquoted field or trailing a closed
quote (RFC 4180 discipline, which is what gives the subject its non-trivial
— if shallow — input space; paper §5.2: "covering all combinations of two
characters achieves perfect coverage").
"""

from __future__ import annotations

from typing import List

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.base import Subject
from repro.taint.tstr import TaintedStr


class CsvSubject(Subject):
    """Character-at-a-time CSV reader with quoted-field support.

    ``delimiter`` mirrors csv_parser's configurable separator (the
    evaluation uses the default comma).
    """

    name = "csv"
    description = "csvparser-style CSV parser"

    def __init__(self, delimiter: str = ",") -> None:
        if len(delimiter) != 1 or delimiter in '"\n\r':
            raise ValueError(f"invalid delimiter {delimiter!r}")
        self.delimiter = delimiter

    def parse(self, stream: InputStream) -> List[List[str]]:
        """Parse all records; return rows of field strings."""
        rows: List[List[str]] = []
        while True:
            lookahead = stream.peek()
            if lookahead.is_eof:
                return rows
            rows.append(self._parse_record(stream))

    def _parse_record(self, stream: InputStream) -> List[str]:
        fields = [self._parse_field(stream)]
        while True:
            char = stream.peek()
            if char.is_eof:
                return fields
            if char == self.delimiter:
                stream.next_char()
                fields.append(self._parse_field(stream))
            elif char == "\n":
                stream.next_char()
                return fields
            elif char == "\r":
                stream.next_char()
                if stream.peek() == "\n":
                    stream.next_char()
                return fields
            else:
                raise ParseError(
                    f"unexpected character after field at {char.index}", char.index
                )

    def _parse_field(self, stream: InputStream) -> str:
        lookahead = stream.peek()
        if lookahead == '"':
            stream.next_char()
            return self._parse_quoted(stream)
        return self._parse_bare(stream)

    def _parse_quoted(self, stream: InputStream) -> str:
        """A double-quoted field; ``""`` is an escaped quote."""
        buffer = TaintedStr.empty()
        while True:
            char = stream.next_char()
            if char.is_eof:
                raise ParseError(
                    f"unterminated quoted field at {char.index}", char.index
                )
            if char == '"':
                follower = stream.peek()
                if follower == '"':
                    stream.next_char()
                    buffer = buffer.append(follower)
                    continue
                return buffer.text
            buffer = buffer.append(char)

    def _parse_bare(self, stream: InputStream) -> str:
        """An unquoted field: anything up to ``,``, newline or EOF."""
        buffer = TaintedStr.empty()
        while True:
            char = stream.peek()
            if char.is_eof or char == self.delimiter or char == "\n" or char == "\r":
                return buffer.text
            if char == '"':
                raise ParseError(
                    f"bare quote inside unquoted field at {char.index}", char.index
                )
            stream.next_char()
            buffer = buffer.append(char)
