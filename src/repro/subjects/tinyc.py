"""Tiny-C compiler and VM (subject "tinyc", Table 1: 191 LoC upstream).

Mirrors Marc Feeley's tiny-c (the gist the paper cites): a lexer with the
keywords ``do``/``else``/``if``/``while``, single-letter variables ``a``-``z``,
non-negative integer literals, the operators ``+ - < =`` and the statement
forms ``if``/``if-else``/``while``/``do-while``/blocks/expression
statements/empty statements.  Like the original, the subject parses, compiles
to a small stack bytecode and *runs* the program (paper §5.2: "tinyC and mjs
also execute the program"); infinite loops such as the paper's ``while(9);``
hit the step budget and raise :class:`~repro.runtime.errors.HangError`.

The keyword check is a ``strcmp`` loop over the keyword table, exactly the
pattern whose dynamic monitoring lets pFuzzer synthesise ``while`` in one
substitution (paper §6, AFL-CTP discussion).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.runtime.errors import HangError, ParseError
from repro.runtime.stream import InputStream
from repro.subjects.base import Subject
from repro.taint.bridge import record_token_expectation
from repro.taint.tchar import TChar
from repro.taint.tstr import TaintedStr
from repro.taint.wrappers import strcmp

KEYWORDS = ("do", "else", "if", "while")


class Sym(enum.Enum):
    """Lexer symbols, named after the original tiny-c enum."""

    DO = "do"
    ELSE = "else"
    IF = "if"
    WHILE = "while"
    LBRA = "{"
    RBRA = "}"
    LPAR = "("
    RPAR = ")"
    PLUS = "+"
    MINUS = "-"
    LESS = "<"
    SEMI = ";"
    EQUAL = "="
    INT = "int"
    ID = "id"
    EOI = "eoi"


@dataclass
class Token:
    sym: Sym
    index: int
    int_val: int = 0
    id_name: str = ""


class TinyCLexer:
    """tiny-c ``next_sym``: whitespace-separated, one token of lookahead."""

    def __init__(self, stream: InputStream) -> None:
        self.stream = stream
        self.token = Token(Sym.EOI, 0)
        self.next_sym()

    def next_sym(self) -> None:
        stream = self.stream
        while True:
            char = stream.peek()
            if char.is_eof:
                self.token = Token(Sym.EOI, char.index)
                return
            if char == " " or char == "\n" or char == "\t" or char == "\r":
                stream.next_char()
                continue
            break
        char = stream.peek()
        index = char.index
        for punct, sym in (
            ("{", Sym.LBRA),
            ("}", Sym.RBRA),
            ("(", Sym.LPAR),
            (")", Sym.RPAR),
            ("+", Sym.PLUS),
            ("-", Sym.MINUS),
            ("<", Sym.LESS),
            (";", Sym.SEMI),
            ("=", Sym.EQUAL),
        ):
            if char == punct:
                stream.next_char()
                self.token = Token(sym, index)
                return
        if char.isdigit():
            value = 0
            while True:
                char = stream.peek()
                if char.is_eof or not char.isdigit():
                    break
                stream.next_char()
                value = value * 10 + char.digit_value()
            self.token = Token(Sym.INT, index, int_val=value)
            return
        if self._is_id_char(char):
            name = TaintedStr.empty()
            while True:
                char = stream.peek()
                if char.is_eof or not self._is_id_char(char):
                    break
                stream.next_char()
                name = name.append(char)
            for keyword in KEYWORDS:
                if strcmp(name, keyword) == 0:
                    self.token = Token(Sym(keyword), index)
                    return
            if len(name) == 1:
                self.token = Token(Sym.ID, index, id_name=name.text)
                return
            raise ParseError(f"unknown identifier at {index}", index)
        raise ParseError(f"unexpected character at {index}", index)

    @staticmethod
    def _is_id_char(char: TChar) -> bool:
        """tiny-c identifiers: lowercase letters only (``'a' <= ch <= 'z'``)."""
        return char >= "a" and char <= "z"


# ---------------------------------------------------------------------- #
# AST (node kinds follow the original's enum)
# ---------------------------------------------------------------------- #

Node = Tuple  # (kind, *children) with ints/strs at the leaves

VAR, CST, ADD, SUB, LT, SET, IF1, IF2, WHILE, DO, EMPTY, SEQ, EXPR, PROG = range(14)


class TinyCParser:
    """tiny-c's recursive-descent parser, one production per method."""

    #: Recursion guard; the original has a fixed-size C stack instead.  Kept
    #: well below Python's recursion limit divided by the frames each
    #: grammar level costs.
    max_depth = 100

    #: Representative spellings for token classes, used by the §7.2 token
    #: bridge when the expected token has no fixed spelling.
    _SPELLINGS = {Sym.INT: "0", Sym.ID: "a", Sym.EOI: ""}

    def __init__(self, lexer: TinyCLexer, token_bridge: bool = False) -> None:
        self.lexer = lexer
        self.token_bridge = token_bridge
        self._depth = 0

    @property
    def sym(self) -> Sym:
        return self.lexer.token.sym

    def _spelling(self, sym: Sym) -> str:
        return self._SPELLINGS.get(sym, sym.value)

    def _token_spelling(self, token: Token) -> str:
        if token.sym is Sym.ID:
            return token.id_name
        if token.sym is Sym.INT:
            return str(token.int_val)
        return self._spelling(token.sym)

    def _expect(self, sym: Sym) -> None:
        matched = self.sym is sym
        if self.token_bridge:
            # §7.2 token-taint bridging: re-express the token-kind check as
            # a string comparison at the token's input index, recovering the
            # character comparison tokenization destroyed.
            token = self.lexer.token
            record_token_expectation(
                token.index, self._token_spelling(token), self._spelling(sym), matched
            )
        if not matched:
            index = self.lexer.token.index
            raise ParseError(f"expected {sym.value!r} at {index}", index)
        self.lexer.next_sym()

    def _enter(self) -> None:
        self._depth += 1
        if self._depth > self.max_depth:
            index = self.lexer.token.index
            raise ParseError(f"nesting too deep at {index}", index)

    def _leave(self) -> None:
        self._depth -= 1

    # <term> := <id> | <int> | <paren_expr>
    def term(self) -> Node:
        token = self.lexer.token
        if token.sym is Sym.ID:
            self.lexer.next_sym()
            return (VAR, token.id_name)
        if token.sym is Sym.INT:
            self.lexer.next_sym()
            return (CST, token.int_val)
        return self.paren_expr()

    # <sum> := <term> | <sum> '+' <term> | <sum> '-' <term>
    def sum(self) -> Node:
        node = self.term()
        while self.sym is Sym.PLUS or self.sym is Sym.MINUS:
            kind = ADD if self.sym is Sym.PLUS else SUB
            self.lexer.next_sym()
            node = (kind, node, self.term())
        return node

    # <test> := <sum> | <sum> '<' <sum>
    def test(self) -> Node:
        node = self.sum()
        if self.sym is Sym.LESS:
            self.lexer.next_sym()
            node = (LT, node, self.sum())
        return node

    # <expr> := <test> | <id> '=' <expr>
    def expr(self) -> Node:
        if self.sym is not Sym.ID:
            return self.test()
        node = self.test()
        if node[0] == VAR and self.sym is Sym.EQUAL:
            self.lexer.next_sym()
            return (SET, node[1], self.expr())
        return node

    # <paren_expr> := '(' <expr> ')'
    def paren_expr(self) -> Node:
        self._enter()
        try:
            self._expect(Sym.LPAR)
            node = self.expr()
            self._expect(Sym.RPAR)
            return node
        finally:
            self._leave()

    def statement(self) -> Node:
        self._enter()
        try:
            return self._statement_inner()
        finally:
            self._leave()

    def _statement_inner(self) -> Node:
        if self.sym is Sym.IF:
            self.lexer.next_sym()
            condition = self.paren_expr()
            then_branch = self.statement()
            if self.sym is Sym.ELSE:
                self.lexer.next_sym()
                return (IF2, condition, then_branch, self.statement())
            return (IF1, condition, then_branch)
        if self.sym is Sym.WHILE:
            self.lexer.next_sym()
            return (WHILE, self.paren_expr(), self.statement())
        if self.sym is Sym.DO:
            self.lexer.next_sym()
            body = self.statement()
            self._expect(Sym.WHILE)
            condition = self.paren_expr()
            self._expect(Sym.SEMI)
            return (DO, body, condition)
        if self.sym is Sym.SEMI:
            self.lexer.next_sym()
            return (EMPTY,)
        if self.sym is Sym.LBRA:
            self.lexer.next_sym()
            node: Node = (EMPTY,)
            while self.sym is not Sym.RBRA:
                if self.sym is Sym.EOI:
                    index = self.lexer.token.index
                    raise ParseError(f"unterminated block at {index}", index)
                node = (SEQ, node, self.statement())
            self.lexer.next_sym()
            return node
        node = (EXPR, self.expr())
        self._expect(Sym.SEMI)
        return node

    # <program> := <statement> EOI | EOI
    # An empty (or whitespace-only) program is accepted: the paper's driver
    # setup treats a single space as valid for every subject (§5.1).
    def program(self) -> Node:
        if self.sym is Sym.EOI:
            return (PROG, (EMPTY,))
        node = (PROG, self.statement())
        if self.sym is not Sym.EOI:
            index = self.lexer.token.index
            raise ParseError(f"trailing input at {index}", index)
        return node


# ---------------------------------------------------------------------- #
# Code generation and VM (the original's IFETCH..HALT machine)
# ---------------------------------------------------------------------- #

IFETCH, ISTORE, IPUSH, IPOP, IADD, ISUB, ILT, JZ, JNZ, JMP, HALT = range(11)

Code = List[Union[int, str]]


class TinyCCompiler:
    """Emit stack bytecode for an AST, following the original's ``c()``."""

    def __init__(self) -> None:
        self.code: Code = []

    def _emit(self, op: Union[int, str]) -> int:
        self.code.append(op)
        return len(self.code) - 1

    def _hole(self) -> int:
        return self._emit(0)

    def _fix(self, hole: int, target: Optional[int] = None) -> None:
        self.code[hole] = target if target is not None else len(self.code)

    def compile(self, node: Node) -> Code:
        self._gen(node)
        return self.code

    def _gen(self, node: Node) -> None:
        kind = node[0]
        if kind == VAR:
            self._emit(IFETCH)
            self._emit(node[1])
        elif kind == CST:
            self._emit(IPUSH)
            self._emit(node[1])
        elif kind == ADD:
            self._gen(node[1])
            self._gen(node[2])
            self._emit(IADD)
        elif kind == SUB:
            self._gen(node[1])
            self._gen(node[2])
            self._emit(ISUB)
        elif kind == LT:
            self._gen(node[1])
            self._gen(node[2])
            self._emit(ILT)
        elif kind == SET:
            self._gen(node[2])
            self._emit(ISTORE)
            self._emit(node[1])
        elif kind == IF1:
            self._gen(node[1])
            self._emit(JZ)
            hole = self._hole()
            self._gen(node[2])
            self._fix(hole)
        elif kind == IF2:
            self._gen(node[1])
            self._emit(JZ)
            hole_else = self._hole()
            self._gen(node[2])
            self._emit(JMP)
            hole_end = self._hole()
            self._fix(hole_else)
            self._gen(node[3])
            self._fix(hole_end)
        elif kind == WHILE:
            top = len(self.code)
            self._gen(node[1])
            self._emit(JZ)
            hole = self._hole()
            self._gen(node[2])
            self._emit(JMP)
            self._fix(self._hole(), top)
            self._fix(hole)
        elif kind == DO:
            top = len(self.code)
            self._gen(node[1])
            self._gen(node[2])
            self._emit(JNZ)
            self._fix(self._hole(), top)
        elif kind == EMPTY:
            pass
        elif kind == SEQ:
            self._gen(node[1])
            self._gen(node[2])
        elif kind == EXPR:
            self._gen(node[1])
            self._emit(IPOP)
        elif kind == PROG:
            self._gen(node[1])
            self._emit(HALT)
        else:  # pragma: no cover - unreachable by construction
            raise AssertionError(f"unknown node kind {kind}")


class TinyCVM:
    """The original's threaded-code interpreter with a step budget."""

    def __init__(self, max_steps: int = 100_000) -> None:
        self.max_steps = max_steps
        self.globals = {chr(letter): 0 for letter in range(ord("a"), ord("z") + 1)}

    def run(self, code: Code) -> None:
        stack: List[int] = []
        pc = 0
        steps = 0
        while True:
            steps += 1
            if steps > self.max_steps:
                raise HangError(self.max_steps)
            op = code[pc]
            pc += 1
            if op == IFETCH:
                stack.append(self.globals[code[pc]])
                pc += 1
            elif op == ISTORE:
                self.globals[code[pc]] = stack[-1]
                pc += 1
            elif op == IPUSH:
                stack.append(code[pc])
                pc += 1
            elif op == IPOP:
                stack.pop()
            elif op == IADD:
                right = stack.pop()
                stack[-1] = stack[-1] + right
            elif op == ISUB:
                right = stack.pop()
                stack[-1] = stack[-1] - right
            elif op == ILT:
                right = stack.pop()
                stack[-1] = 1 if stack[-1] < right else 0
            elif op == JZ:
                target = code[pc]
                pc = target if stack.pop() == 0 else pc + 1
            elif op == JNZ:
                target = code[pc]
                pc = target if stack.pop() != 0 else pc + 1
            elif op == JMP:
                pc = code[pc]
            elif op == HALT:
                return
            else:  # pragma: no cover - unreachable by construction
                raise AssertionError(f"unknown opcode {op}")


class TinyCSubject(Subject):
    """Parse, compile and execute one tiny-c program.

    ``token_bridge=True`` enables §7.2 token-taint bridging: the parser's
    token-kind expectations are reported back as string comparisons, which
    lets the fuzzer make progress *after* a keyword.  Off by default, so the
    paper's tokenization limitation stays reproducible.
    """

    name = "tinyc"
    description = "tiny-c compiler + VM"

    def __init__(self, max_steps: int = 100_000, token_bridge: bool = False) -> None:
        self.max_steps = max_steps
        self.token_bridge = token_bridge

    def parse(self, stream: InputStream):
        lexer = TinyCLexer(stream)
        ast = TinyCParser(lexer, token_bridge=self.token_bridge).program()
        code = TinyCCompiler().compile(ast)
        vm = TinyCVM(self.max_steps)
        vm.run(code)
        return vm.globals
