"""inih-style .INI parser (subject "ini", Table 1: 293 LoC upstream).

Mirrors the behaviour of benhoyt/inih as configured in the paper's
evaluation: line-oriented input, ``[section]`` headers, ``name = value`` /
``name : value`` pairs, ``;`` and ``#`` comments, inline ``;`` comments, and
a non-zero exit on the first malformed line (a section header without a
closing ``]``, or a content line without a separator).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.runtime.errors import ParseError
from repro.runtime.stream import InputStream
from repro.subjects.base import Subject
from repro.taint.tstr import TaintedStr

#: Characters inih treats as horizontal whitespace when stripping.
_BLANK = " \t"


class IniSubject(Subject):
    """Line-oriented INI parser in the style of inih's ``ini_parse``.

    ``multiline=True`` enables inih's ``INI_ALLOW_MULTILINE``: a line that
    starts with whitespace continues the previous entry's value.  The
    evaluation uses the default (off) so that leading-whitespace content
    lines keep their ordinary meaning.
    """

    name = "ini"
    description = "inih-style .INI file parser"

    def __init__(self, multiline: bool = False) -> None:
        self.multiline = multiline

    def parse(self, stream: InputStream) -> List[Tuple[str, str, str]]:
        """Parse the whole input; return ``(section, name, value)`` entries."""
        entries: List[Tuple[str, str, str]] = []
        section = ""
        while True:
            lookahead = stream.peek()
            if lookahead.is_eof:
                return entries
            section = self._parse_line(stream, section, entries)

    # ------------------------------------------------------------------ #
    # One line at a time, the way ini_parse walks its buffer
    # ------------------------------------------------------------------ #

    def _parse_line(
        self,
        stream: InputStream,
        section: str,
        entries: List[Tuple[str, str, str]],
    ) -> str:
        if self.multiline and entries:
            first = stream.peek()
            if not first.is_eof and first.in_set(_BLANK):
                # INI_ALLOW_MULTILINE: leading whitespace continues the
                # previous value.
                self._skip_blank(stream)
                follower = stream.peek()
                if not follower.is_eof and follower != "\n":
                    continuation = self._read_to_eol(stream)
                    prev_section, prev_name, prev_value = entries[-1]
                    entries[-1] = (
                        prev_section,
                        prev_name,
                        f"{prev_value}\n{continuation}".strip(_BLANK),
                    )
                    return section
        self._skip_blank(stream)
        lookahead = stream.peek()
        if lookahead.is_eof:
            return section
        if lookahead == "\n":
            stream.next_char()
            return section
        if lookahead == ";" or lookahead == "#":
            self._skip_to_eol(stream)
            return section
        if lookahead == "[":
            stream.next_char()
            return self._parse_section(stream)
        self._parse_pair(stream, section, entries)
        return section

    def _parse_section(self, stream: InputStream) -> str:
        """``[section]``: inih errors when the ``]`` is missing."""
        buffer = TaintedStr.empty()
        while True:
            char = stream.peek()
            if char == "]":
                stream.next_char()
                self._skip_to_eol(stream)
                return buffer.strip(_BLANK).text
            if char.is_eof or char == "\n":
                raise ParseError(
                    f"section header without ']' at {char.index}", char.index
                )
            stream.next_char()
            buffer = buffer.append(char)

    def _parse_pair(
        self,
        stream: InputStream,
        section: str,
        entries: List[Tuple[str, str, str]],
    ) -> None:
        """``name = value`` / ``name : value``; error when no separator."""
        name = TaintedStr.empty()
        while True:
            char = stream.peek()
            if char == "=" or char == ":":
                stream.next_char()
                break
            if char.is_eof or char == "\n":
                raise ParseError(
                    f"content line without '=' or ':' at {char.index}", char.index
                )
            if char == ";":
                # inih: an inline comment before the separator still means
                # the line has no separator -> error on this line.
                raise ParseError(
                    f"comment before separator at {char.index}", char.index
                )
            stream.next_char()
            name = name.append(char)
        value = TaintedStr.empty()
        while True:
            char = stream.peek()
            if char.is_eof or char == "\n":
                break
            if char == ";":
                # Inline comment: inih strips it (INI_ALLOW_INLINE_COMMENTS).
                self._skip_to_eol(stream)
                break
            stream.next_char()
            value = value.append(char)
        if not stream.peek().is_eof:
            # Consume the newline terminating this line, if still present.
            if stream.peek() == "\n":
                stream.next_char()
        entries.append(
            (section, name.strip(_BLANK).text, value.strip(_BLANK).text)
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _skip_blank(self, stream: InputStream) -> None:
        while True:
            char = stream.peek()
            if char.is_eof or not char.in_set(_BLANK):
                return
            stream.next_char()

    def _read_to_eol(self, stream: InputStream) -> str:
        """Consume and return the rest of the line (newline consumed)."""
        buffer = TaintedStr.empty()
        while True:
            char = stream.peek()
            if char.is_eof:
                return buffer.text
            stream.next_char()
            if char == "\n":
                return buffer.text
            buffer = buffer.append(char)

    def _skip_to_eol(self, stream: InputStream) -> None:
        """Consume up to and including the next newline (or EOF)."""
        while True:
            char = stream.peek()
            if char.is_eof:
                return
            stream.next_char()
            if char == "\n":
                return
