"""repro — a reproduction of *Parser-Directed Fuzzing* (PLDI 2019).

Public API
==========

The primary contribution is :class:`~repro.core.fuzzer.PFuzzer`::

    from repro import PFuzzer, FuzzerConfig, load_subject

    subject = load_subject("tinyc")
    fuzzer = PFuzzer(subject, FuzzerConfig(seed=1, max_executions=2000))
    result = fuzzer.run()
    print(result.valid_inputs)

Baselines (:mod:`repro.baselines`), the evaluation harness
(:mod:`repro.eval`) and the grammar miner (:mod:`repro.miner`) build on the
same :func:`~repro.runtime.harness.run_subject` substrate.
"""

from repro.core.config import FuzzerConfig, HeuristicWeights
from repro.core.fuzzer import FuzzingResult, PFuzzer
from repro.runtime.harness import ExitStatus, RunResult, run_subject
from repro.subjects.registry import SUBJECT_NAMES, load_subject

__version__ = "1.0.0"

__all__ = [
    "PFuzzer",
    "FuzzerConfig",
    "HeuristicWeights",
    "FuzzingResult",
    "load_subject",
    "SUBJECT_NAMES",
    "run_subject",
    "RunResult",
    "ExitStatus",
    "__version__",
]
